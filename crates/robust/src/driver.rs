//! The budgeted fallback driver.
//!
//! A [`SolverDriver`] owns a *fallback ladder* — an ordered list of
//! algorithm names from the core registry — and an optional work
//! budget. [`SolverDriver::try_solve`] walks the ladder top-down:
//!
//! 1. The instance is validated up front ([`RectpartError::check_problem`])
//!    and Γ is built through the fallible path, so malformed inputs and
//!    overflow surface as errors before any rung runs.
//! 2. Before each rung, a coarse a-priori estimate ([`estimate_work`])
//!    is compared against the remaining budget; rungs that do not fit
//!    are skipped (the last rung is always admitted while any budget
//!    remains, so a tight budget degrades to the cheapest algorithm
//!    instead of failing).
//! 3. Each admitted rung runs under a panic boundary: a panicking
//!    algorithm records [`RungOutcome::Failed`] and control demotes to
//!    the next rung. Solutions are re-validated before being returned.
//!    A [`RetryPolicy`] may grant a rung several attempts, separated by
//!    deterministic work-unit backoff; a rung that trips its per-rung
//!    circuit breaker is abandoned with [`RungOutcome::CircuitOpen`].
//!
//! Budget accounting uses the deterministic work meter
//! ([`rectpart_obs::work`]): charges are decided by the algorithms, not
//! the scheduler, so the same budget admits the same rungs — and the
//! [`DegradationReport`] is bit-identical — at every thread count.
//! The budget is enforced only at these serial checkpoints; a running
//! rung is never interrupted, so a rung may overshoot its estimate.
//!
//! # Checkpoints, cancellation, resume
//!
//! The same rung boundaries double as the driver's *progress
//! checkpoints*: before each rung the driver hands a [`SolveProgress`]
//! to the run's [`CheckpointSink`] (the `rectpart-resume` crate's file
//! checkpointer serializes it with a torn-write-detecting footer). The
//! rungs run through [`Partitioner::try_partition`], so a caller that
//! arms the work-unit cancellation deadline (`rectpart_obs::cancel`)
//! gets control back mid-rung as [`RectpartError::Cancelled`] — the
//! driver then emits one final *forced* checkpoint describing the state
//! at the cancelled rung's start (partial rung work is discarded
//! wholesale) and unwinds cleanly.
//!
//! [`SolverDriver::resume_from`] warm-starts a solve from such a
//! snapshot. Completed rungs are replayed from the snapshot verbatim,
//! the interrupted rung re-runs from scratch, and work accounting
//! continues from the snapshot's meter value (the Γ rebuild is *not*
//! double-charged), so a resumed run's [`SolveOutcome`] is bit-identical
//! to the run that was never interrupted.

use std::fmt;
use std::panic::AssertUnwindSafe;

use rectpart_core::{
    algorithm_by_name, LoadMatrix, Partition, Partitioner, PrefixSum2D, RectpartError,
};
use rectpart_obs::work;

/// The default fallback ladder: the optimal m-way jagged DP, demoting
/// to the paper's best m-way heuristic, demoting to the closed-form
/// uniform grid (which cannot fail and costs almost nothing).
pub const DEFAULT_LADDER: [&str; 3] = ["JAG-M-OPT-BEST", "JAG-M-HEUR-BEST", "RECT-UNIFORM"];

/// A fallback ladder resolved against the core registry: each rung's
/// name paired with its instantiated algorithm.
pub type ResolvedLadder = Vec<(String, Box<dyn Partitioner>)>;

/// Coarse a-priori work estimate, in [`rectpart_obs::work`] units, for
/// running algorithm `name` on a `rows × cols` instance with `m` parts.
///
/// Used only for budget admission, so it needs the right order of
/// magnitude, not precision: exact DPs are charged one unit per cell
/// per part, heuristics one pass over the matrix plus per-part 1-D
/// solves, and the closed-form uniform grid a handful of units.
pub fn estimate_work(name: &str, rows: usize, cols: usize, m: usize) -> u64 {
    let cells = (rows as u64).saturating_mul(cols as u64);
    let m64 = m as u64;
    let upper = name.to_ascii_uppercase();
    if upper.contains("UNIFORM") {
        m64.saturating_add(1)
    } else if upper.contains("OPT") {
        cells.saturating_mul(m64.max(1)).saturating_add(cells)
    } else {
        cells.saturating_add(m64.saturating_mul((rows + cols) as u64))
    }
}

/// The splitmix64 mixer — the deterministic jitter stream behind
/// [`RetryPolicy`] backoff. Pure function of its input, so the backoff
/// schedule is identical at every thread count and on every resume.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a fingerprint of a load matrix (dimensions + row-major cells).
/// Stored in every [`SolveProgress`] so a snapshot can never be resumed
/// against a different instance.
pub fn matrix_fingerprint(matrix: &LoadMatrix) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    fn mix(mut h: u64, v: u64) -> u64 {
        for b in v.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
        h
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    h = mix(h, matrix.rows() as u64);
    h = mix(h, matrix.cols() as u64);
    for &cell in matrix.data() {
        h = mix(h, cell as u64);
    }
    h
}

/// Per-rung retry and circuit-breaker configuration.
///
/// The default grants each rung a single attempt and never opens the
/// breaker — exactly the historical demote-on-first-failure behaviour.
/// With `max_attempts > 1`, a rung that panics or returns an invalid
/// cover is retried after a deterministic backoff *charged in work
/// units* (base·2^attempt plus splitmix64 jitter) — wall-clock sleeps
/// would break thread-count determinism, work charges do not. Every
/// failed attempt also *trips* the rung; once a rung accumulates
/// `breaker_trips` trips (within a run or across resumed runs — trips
/// persist in [`SolveProgress`]) its breaker opens and the rung is
/// skipped with [`RungOutcome::CircuitOpen`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per rung per run (≥ 1).
    pub max_attempts: u32,
    /// Trip count at which a rung's circuit breaker opens.
    pub breaker_trips: u32,
    /// Base backoff charge, in work units, between attempts.
    pub backoff_base: u64,
    /// Seed of the splitmix64 jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            breaker_trips: u32::MAX,
            backoff_base: 16,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// A policy with retries and a finite breaker; backoff and seed keep
    /// their defaults.
    pub fn retries(max_attempts: u32, breaker_trips: u32) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            breaker_trips: breaker_trips.max(1),
            ..RetryPolicy::default()
        }
    }

    /// Deterministic backoff charge before retrying `rung` after its
    /// `attempt`-th failed attempt (1-based).
    fn backoff_units(&self, rung: usize, attempt: u32) -> u64 {
        let exp = self
            .backoff_base
            .saturating_mul(1u64 << attempt.min(16) as u64);
        let jitter = splitmix64(self.seed ^ ((rung as u64) << 32) ^ attempt as u64)
            .checked_rem(self.backoff_base.max(1))
            .unwrap_or(0);
        exp.saturating_add(jitter)
    }
}

/// What happened to one ladder rung during a solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RungOutcome {
    /// The rung produced a validated partition; the solve stopped here.
    Answered {
        /// Bottleneck load of the accepted partition.
        lmax: u64,
    },
    /// The rung ran but did not produce an acceptable partition
    /// (panicked, or returned an invalid cover).
    Failed {
        /// Why the rung was rejected.
        error: RectpartError,
    },
    /// The rung was skipped because its a-priori estimate exceeded the
    /// remaining budget.
    SkippedEstimate {
        /// The rung's [`estimate_work`] value.
        estimate: u64,
        /// Budget units left when the rung was considered.
        remaining: u64,
    },
    /// The rung's circuit breaker opened: it accumulated
    /// [`RetryPolicy::breaker_trips`] failed attempts (within this run
    /// or across resumed runs) and was abandoned.
    CircuitOpen {
        /// Trip count when the breaker opened.
        trips: u32,
    },
    /// An earlier rung already answered before this one was considered.
    NotReached,
}

impl RungOutcome {
    fn label(&self) -> String {
        match self {
            RungOutcome::Answered { lmax } => format!("answered (Lmax {lmax})"),
            RungOutcome::Failed { error } => format!("failed: {error}"),
            RungOutcome::SkippedEstimate {
                estimate,
                remaining,
            } => format!("skipped (estimate {estimate} > remaining {remaining})"),
            RungOutcome::CircuitOpen { trips } => format!("circuit open ({trips} trips)"),
            RungOutcome::NotReached => "not reached".to_string(),
        }
    }
}

/// Per-rung entry of a [`DegradationReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungReport {
    /// Algorithm name, as listed in the ladder.
    pub name: String,
    /// What happened to the rung.
    pub outcome: RungOutcome,
    /// Work units the rung actually spent, including retry backoff
    /// charges (0 if skipped/not reached).
    pub work: u64,
    /// Attempts actually executed (0 if skipped/not reached).
    pub attempts: u32,
    /// Cumulative run work when the rung was resolved — the per-rung
    /// work-spent ledger. Like every report field it is derived from
    /// algorithm-decided charges only, so it is identical at every
    /// thread count and across resumes.
    pub spent_after: u64,
}

impl RungReport {
    fn unreached(name: &str) -> Self {
        RungReport {
            name: name.to_string(),
            outcome: RungOutcome::NotReached,
            work: 0,
            attempts: 0,
            spent_after: 0,
        }
    }
}

/// Deterministic record of one driver run: which rungs ran, what each
/// spent, and which one answered.
///
/// Built exclusively from algorithm-decided quantities (work charges,
/// Lmax values, validation verdicts), never from execution statistics,
/// so two runs of the same instance under the same fault plan compare
/// equal with `==` regardless of thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationReport {
    /// Instance shape.
    pub rows: usize,
    /// Instance shape.
    pub cols: usize,
    /// Requested part count.
    pub m: usize,
    /// Work budget the run was given, if any.
    pub budget: Option<u64>,
    /// One entry per ladder rung, in ladder order.
    pub rungs: Vec<RungReport>,
    /// Name of the rung that answered, if any.
    pub answered_by: Option<String>,
    /// Total work units spent by the run, including Γ construction.
    pub total_work: u64,
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.budget {
            Some(b) => writeln!(
                f,
                "{}x{} m={}: budget {} units, spent {}",
                self.rows, self.cols, self.m, b, self.total_work
            )?,
            None => writeln!(
                f,
                "{}x{} m={}: unbudgeted, spent {} units",
                self.rows, self.cols, self.m, self.total_work
            )?,
        }
        for (i, r) in self.rungs.iter().enumerate() {
            writeln!(
                f,
                "  [{}] {:<18} {} ({} units, {} attempts, {} spent)",
                i,
                r.name,
                r.outcome.label(),
                r.work,
                r.attempts,
                r.spent_after
            )?;
        }
        Ok(())
    }
}

/// A successful driver run: the partition plus the full rung record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveOutcome {
    /// The accepted (validated) partition.
    pub partition: Partition,
    /// What the ladder did to produce it.
    pub report: DegradationReport,
}

/// A failed driver run: the terminal error plus the rung record, so
/// callers can still see how far the ladder got. The report is boxed
/// to keep the `Err` arm of [`SolverDriver::try_solve`] pointer-sized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriverFailure {
    /// The error that terminated the run.
    pub error: RectpartError,
    /// What the ladder did before failing.
    pub report: Box<DegradationReport>,
}

impl fmt::Display for DriverFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "solve failed: {}\n{}", self.error, self.report)
    }
}

impl std::error::Error for DriverFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

impl From<DriverFailure> for RectpartError {
    fn from(f: DriverFailure) -> Self {
        f.error
    }
}

/// A resumable description of a solve in flight, emitted at every rung
/// boundary (and, `force`d, on cancellation). Everything a fresh
/// process needs to continue the run bit-identically: the effective
/// ladder and budget, the instance identity, the completed rung
/// reports, the persistent breaker trip counts, and the work-meter
/// value at the boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveProgress {
    /// The ladder the run is walking (resume uses this, not the resuming
    /// driver's own ladder, so the combined run equals one fresh run).
    pub ladder: Vec<String>,
    /// The work budget the run was given, if any.
    pub budget: Option<u64>,
    /// Instance shape.
    pub rows: usize,
    /// Instance shape.
    pub cols: usize,
    /// Requested part count.
    pub m: usize,
    /// FNV-1a fingerprint of the instance ([`matrix_fingerprint`]).
    pub matrix_fingerprint: u64,
    /// Index of the next rung to run; `rungs` holds exactly the reports
    /// of the rungs before it.
    pub next_rung: usize,
    /// Reports of the rungs already resolved, in ladder order.
    pub rungs: Vec<RungReport>,
    /// Per-rung circuit-breaker trip counts at the boundary (one entry
    /// per ladder rung; an interrupted rung's mid-flight trips are
    /// rolled back so the re-run re-accumulates them identically).
    pub trips: Vec<u32>,
    /// Work-meter reading at the boundary. Resume continues the ledger
    /// from here; the Γ rebuild is not double-charged.
    pub work_spent: u64,
}

/// Receiver of [`SolveProgress`] checkpoints — the driver-side half of
/// the snapshot protocol. `force` is `false` for routine rung-boundary
/// checkpoints (sinks may downsample, e.g. by work interval) and `true`
/// when the checkpoint is the run's last word (cancellation): a forced
/// checkpoint must not be dropped.
pub trait CheckpointSink {
    /// Observes one progress checkpoint.
    fn on_checkpoint(&mut self, progress: &SolveProgress, force: bool);
}

/// A sink that drops every checkpoint; used by the non-resumable entry
/// points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopSink;

impl CheckpointSink for NoopSink {
    fn on_checkpoint(&mut self, _progress: &SolveProgress, _force: bool) {}
}

/// Work-ledger anchor of one ladder run: `base` is the meter value the
/// run inherited (0 for a fresh solve, the snapshot's `work_spent` for
/// a resume), `mark` the local meter mark everything after the anchor
/// is measured from.
#[derive(Debug, Clone, Copy)]
struct Ledger {
    base: u64,
    mark: work::Mark,
}

impl Ledger {
    fn spent(&self) -> u64 {
        self.base.saturating_add(self.mark.elapsed())
    }
}

/// The fault-tolerant, budgeted solver driver. See the crate docs for
/// the execution model.
#[derive(Debug, Clone)]
pub struct SolverDriver {
    ladder: Vec<String>,
    budget: Option<u64>,
    retry: RetryPolicy,
}

impl Default for SolverDriver {
    fn default() -> Self {
        Self::new()
    }
}

impl SolverDriver {
    /// A driver with the [`DEFAULT_LADDER`], no budget, and the
    /// single-attempt default [`RetryPolicy`].
    pub fn new() -> Self {
        SolverDriver {
            ladder: DEFAULT_LADDER.iter().map(|s| s.to_string()).collect(),
            budget: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Replaces the fallback ladder. Names are resolved against the
    /// core registry (case-insensitively) at solve time.
    pub fn with_ladder<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.ladder = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the work budget, in deterministic [`rectpart_obs::work`]
    /// units (Γ construction charges one unit per cell; probes one unit
    /// per call — see `estimate_work` for the admission model).
    pub fn with_budget(mut self, units: u64) -> Self {
        self.budget = Some(units);
        self
    }

    /// Sets the per-rung retry and circuit-breaker policy.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// The configured ladder, in order.
    pub fn ladder(&self) -> &[String] {
        &self.ladder
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// The configured retry policy.
    pub fn retry(&self) -> RetryPolicy {
        self.retry
    }

    /// Validates the instance, then walks the fallback ladder until a
    /// rung answers. Returns the first validated partition together
    /// with the [`DegradationReport`]; on failure the report is still
    /// attached to the [`DriverFailure`].
    pub fn try_solve(&self, matrix: &LoadMatrix, m: usize) -> Result<SolveOutcome, DriverFailure> {
        self.try_solve_checkpointed(matrix, m, &mut NoopSink)
    }

    /// [`try_solve`](Self::try_solve) with a [`CheckpointSink`] observing
    /// every rung boundary — the resumable entry point.
    pub fn try_solve_checkpointed(
        &self,
        matrix: &LoadMatrix,
        m: usize,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome, DriverFailure> {
        let rungs = self.resolve_ladder(matrix, m)?;
        self.try_solve_with_sink(rungs, matrix, m, sink)
    }

    /// [`try_solve`](Self::try_solve) with explicit, pre-resolved rungs
    /// instead of registry names — the hook for custom ladders and for
    /// fault tests that need a deliberately misbehaving partitioner.
    pub fn try_solve_with(
        &self,
        rungs: Vec<(String, Box<dyn Partitioner>)>,
        matrix: &LoadMatrix,
        m: usize,
    ) -> Result<SolveOutcome, DriverFailure> {
        self.try_solve_with_sink(rungs, matrix, m, &mut NoopSink)
    }

    /// The fully explicit fresh-solve entry point: pre-resolved rungs
    /// plus a checkpoint sink.
    pub fn try_solve_with_sink(
        &self,
        rungs: Vec<(String, Box<dyn Partitioner>)>,
        matrix: &LoadMatrix,
        m: usize,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome, DriverFailure> {
        let (rows, cols) = (matrix.rows(), matrix.cols());
        if rungs.is_empty() {
            return Err(self.failure_before_rungs(
                matrix,
                m,
                RectpartError::UnknownAlgorithm("(empty fallback ladder)".into()),
            ));
        }
        if let Err(e) = RectpartError::check_problem(rows, cols, m) {
            let mut failure = self.failure_before_rungs(matrix, m, e);
            failure.report.rungs = rungs
                .iter()
                .map(|(name, _)| RungReport::unreached(name))
                .collect();
            return Err(failure);
        }

        // Everything from here on counts against the budget, including
        // Γ construction (one work unit per cell).
        let ledger = Ledger {
            base: 0,
            mark: work::Mark::now(),
        };
        let pfx = match PrefixSum2D::try_new(matrix) {
            Ok(pfx) => pfx,
            Err(e) => {
                let mut failure = self.failure_before_rungs(matrix, m, e);
                failure.report.rungs = rungs
                    .iter()
                    .map(|(name, _)| RungReport::unreached(name))
                    .collect();
                failure.report.total_work = ledger.spent();
                return Err(failure);
            }
        };

        let trips = vec![0u32; rungs.len()];
        self.run_ladder(
            &rungs,
            m,
            &pfx,
            self.budget,
            matrix_fingerprint(matrix),
            ledger,
            0,
            Vec::with_capacity(rungs.len()),
            trips,
            sink,
        )
    }

    /// Warm-starts a solve from a [`SolveProgress`] snapshot, resolving
    /// the snapshot's ladder against the core registry. The snapshot is
    /// validated against the supplied instance (shape, part count,
    /// fingerprint, internal consistency); any mismatch is
    /// [`RectpartError::SnapshotCorrupt`] — a damaged or mismatched
    /// snapshot is never silently accepted.
    pub fn resume_from(
        &self,
        progress: &SolveProgress,
        matrix: &LoadMatrix,
        m: usize,
    ) -> Result<SolveOutcome, DriverFailure> {
        self.resume_checkpointed(progress, matrix, m, &mut NoopSink)
    }

    /// [`resume_from`](Self::resume_from) with a [`CheckpointSink`], so
    /// a resumed run keeps checkpointing (a solve may be interrupted
    /// more than once).
    pub fn resume_checkpointed(
        &self,
        progress: &SolveProgress,
        matrix: &LoadMatrix,
        m: usize,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome, DriverFailure> {
        let mut rungs: ResolvedLadder = Vec::with_capacity(progress.ladder.len());
        for name in &progress.ladder {
            match algorithm_by_name(name) {
                Some(algo) => rungs.push((name.clone(), algo)),
                None => {
                    return Err(self.snapshot_failure(
                        matrix,
                        m,
                        format!("snapshot ladder names unknown algorithm {name:?}"),
                    ));
                }
            }
        }
        self.resume_with_sink(rungs, progress, matrix, m, sink)
    }

    /// The fully explicit resume entry point: pre-resolved rungs (which
    /// must match the snapshot's ladder names) plus a checkpoint sink.
    pub fn resume_with_sink(
        &self,
        rungs: ResolvedLadder,
        progress: &SolveProgress,
        matrix: &LoadMatrix,
        m: usize,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome, DriverFailure> {
        // The resume span wraps validation, Γ rebuild and the continued
        // ladder walk, so rung spans of a resumed run nest under it.
        let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::DriverResume);
        if let Err(reason) = validate_progress(progress, &rungs, matrix, m) {
            return Err(self.snapshot_failure(matrix, m, reason));
        }
        rectpart_obs::incr(rectpart_obs::Counter::ResumeHits);

        let pfx = match PrefixSum2D::try_new(matrix) {
            Ok(pfx) => pfx,
            Err(e) => {
                let mut failure = self.failure_before_rungs(matrix, m, e);
                failure.report.rungs = rungs
                    .iter()
                    .map(|(name, _)| RungReport::unreached(name))
                    .collect();
                return Err(failure);
            }
        };
        // The ledger anchors *after* the Γ rebuild: the snapshot's
        // `work_spent` already accounts for the original construction,
        // so recharging it here would break resume bit-identity.
        let ledger = Ledger {
            base: progress.work_spent,
            mark: work::Mark::now(),
        };
        self.run_ladder(
            &rungs,
            m,
            &pfx,
            progress.budget,
            progress.matrix_fingerprint,
            ledger,
            progress.next_rung,
            progress.rungs.clone(),
            progress.trips.clone(),
            sink,
        )
    }

    /// The shared ladder walk behind fresh solves and resumes.
    #[allow(clippy::too_many_arguments)]
    fn run_ladder(
        &self,
        rungs: &[(String, Box<dyn Partitioner>)],
        m: usize,
        pfx: &PrefixSum2D,
        budget: Option<u64>,
        fingerprint: u64,
        ledger: Ledger,
        start_rung: usize,
        mut reports: Vec<RungReport>,
        mut trips: Vec<u32>,
        sink: &mut dyn CheckpointSink,
    ) -> Result<SolveOutcome, DriverFailure> {
        let (rows, cols) = (pfx.rows(), pfx.cols());
        let ladder_names: Vec<String> = rungs.iter().map(|(name, _)| name.clone()).collect();
        let mut answered: Option<Partition> = None;
        let mut answered_by: Option<String> = None;
        let mut last_failure: Option<RectpartError> = None;
        let mut budget_blocked = false;

        let n_rungs = rungs.len();
        for (idx, (name, algo)) in rungs.iter().enumerate().skip(start_rung) {
            if answered.is_some() {
                reports.push(RungReport::unreached(name));
                continue;
            }
            // Rung boundary: this is both the budget checkpoint and the
            // snapshot point. The progress carries the trips as they are
            // *now* — the rung about to run has not tripped yet.
            sink.on_checkpoint(
                &SolveProgress {
                    ladder: ladder_names.clone(),
                    budget,
                    rows,
                    cols,
                    m,
                    matrix_fingerprint: fingerprint,
                    next_rung: idx,
                    rungs: reports.clone(),
                    trips: trips.clone(),
                    work_spent: ledger.spent(),
                },
                false,
            );
            // Circuit breaker: a rung that already tripped out (possibly
            // in a previous, interrupted run) is not retried.
            let trips_at_start = trips.get(idx).copied().unwrap_or(0);
            if trips_at_start >= self.retry.breaker_trips {
                reports.push(RungReport {
                    name: name.clone(),
                    outcome: RungOutcome::CircuitOpen {
                        trips: trips_at_start,
                    },
                    work: 0,
                    attempts: 0,
                    spent_after: ledger.spent(),
                });
                continue;
            }
            // Budget admission: serial checkpoint against the meter.
            if let Some(budget) = budget {
                let remaining = budget.saturating_sub(ledger.spent());
                let estimate = estimate_work(name, rows, cols, m);
                let last = idx == n_rungs - 1;
                let admit = if last {
                    remaining > 0
                } else {
                    estimate <= remaining
                };
                if !admit {
                    budget_blocked = true;
                    reports.push(RungReport {
                        name: name.clone(),
                        outcome: RungOutcome::SkippedEstimate {
                            estimate,
                            remaining,
                        },
                        work: 0,
                        attempts: 0,
                        spent_after: ledger.spent(),
                    });
                    continue;
                }
            }
            let rung_start_spent = ledger.spent();
            let mut rung_trips = trips_at_start;
            // The rung span wraps the panic boundary from outside: guards
            // are plain RAII, so an unwinding rung still exits its span
            // here rather than leaking an open frame into the next rung.
            let _rung_span =
                rectpart_obs::span::enter_arg(rectpart_obs::span::SpanKind::DriverRung, idx as u32);
            let mut attempts = 0u32;
            let outcome = loop {
                attempts += 1;
                // lint:allow(panic) -- the workspace's one intentional panic boundary: a panicking rung demotes to the next ladder entry instead of tearing down the caller
                let solved = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    #[cfg(feature = "faultinject")]
                    if rectpart_obs::fault::rung_should_panic(idx as u64) {
                        // lint:allow(panic) -- faultinject: deliberate injected rung panic, contained by the catch_unwind boundary above
                        panic!("injected rung fault");
                    }
                    algo.try_partition(pfx, m)
                }));
                let failed = match solved {
                    Ok(Ok(partition)) => match partition.validate(pfx) {
                        Ok(()) => {
                            let lmax = partition.lmax(pfx);
                            answered = Some(partition);
                            answered_by = Some(name.clone());
                            break RungOutcome::Answered { lmax };
                        }
                        Err(pe) => RectpartError::InvalidSolution(pe),
                    },
                    Ok(Err(RectpartError::Cancelled)) => {
                        // Cancellation is not a failure of the rung: the
                        // partial attempt (and any earlier trips of this
                        // run's attempt loop) is discarded wholesale, so
                        // the forced checkpoint describes the rung's
                        // *start* and the re-run replays identically.
                        // (`trips` was never updated mid-rung — the
                        // local `rung_trips` holds the in-flight count —
                        // so it already reads as it did at rung start.)
                        sink.on_checkpoint(
                            &SolveProgress {
                                ladder: ladder_names.clone(),
                                budget,
                                rows,
                                cols,
                                m,
                                matrix_fingerprint: fingerprint,
                                next_rung: idx,
                                rungs: reports.clone(),
                                trips: trips.clone(),
                                work_spent: rung_start_spent,
                            },
                            true,
                        );
                        reports.push(RungReport {
                            name: name.clone(),
                            outcome: RungOutcome::Failed {
                                error: RectpartError::Cancelled,
                            },
                            work: ledger.spent().saturating_sub(rung_start_spent),
                            attempts,
                            spent_after: ledger.spent(),
                        });
                        for (later, _) in rungs.iter().skip(idx + 1) {
                            reports.push(RungReport::unreached(later));
                        }
                        return Err(DriverFailure {
                            error: RectpartError::Cancelled,
                            report: Box::new(DegradationReport {
                                rows,
                                cols,
                                m,
                                budget,
                                rungs: reports,
                                answered_by: None,
                                total_work: ledger.spent(),
                            }),
                        });
                    }
                    Ok(Err(e)) => e,
                    Err(_payload) => RectpartError::WorkerPanic { rung: name.clone() },
                };
                rung_trips += 1;
                last_failure = Some(failed.clone());
                if rung_trips >= self.retry.breaker_trips {
                    break RungOutcome::CircuitOpen { trips: rung_trips };
                }
                if attempts >= self.retry.max_attempts {
                    break RungOutcome::Failed { error: failed };
                }
                // Deterministic backoff, charged in work units so the
                // ledger (and any budget) sees the retry pressure.
                work::charge(self.retry.backoff_units(idx, attempts));
                rectpart_obs::incr(rectpart_obs::Counter::RetryBackoffs);
            };
            if let Some(t) = trips.get_mut(idx) {
                *t = rung_trips;
            }
            reports.push(RungReport {
                name: name.clone(),
                outcome,
                work: ledger.spent().saturating_sub(rung_start_spent),
                attempts,
                spent_after: ledger.spent(),
            });
        }

        let report = DegradationReport {
            rows,
            cols,
            m,
            budget,
            rungs: reports,
            answered_by: answered_by.clone(),
            total_work: ledger.spent(),
        };
        match answered {
            Some(partition) => Ok(SolveOutcome { partition, report }),
            None => {
                let error = if budget_blocked && last_failure.is_none() {
                    RectpartError::BudgetExhausted {
                        budget: budget.unwrap_or(0),
                        spent: report.total_work,
                    }
                } else {
                    last_failure.unwrap_or(RectpartError::UnknownAlgorithm(
                        "(no rung produced an answer)".into(),
                    ))
                };
                Err(DriverFailure {
                    error,
                    report: Box::new(report),
                })
            }
        }
    }

    /// Resolves the configured ladder against the core registry.
    fn resolve_ladder(
        &self,
        matrix: &LoadMatrix,
        m: usize,
    ) -> Result<ResolvedLadder, DriverFailure> {
        let mut rungs: ResolvedLadder = Vec::with_capacity(self.ladder.len());
        for name in &self.ladder {
            match algorithm_by_name(name) {
                Some(algo) => rungs.push((name.clone(), algo)),
                None => {
                    return Err(self.failure_before_rungs(
                        matrix,
                        m,
                        RectpartError::UnknownAlgorithm(name.clone()),
                    ));
                }
            }
        }
        Ok(rungs)
    }

    /// A failure whose report shows the configured ladder untouched.
    fn failure_before_rungs(
        &self,
        matrix: &LoadMatrix,
        m: usize,
        error: RectpartError,
    ) -> DriverFailure {
        DriverFailure {
            error,
            report: Box::new(DegradationReport {
                rows: matrix.rows(),
                cols: matrix.cols(),
                m,
                budget: self.budget,
                rungs: self
                    .ladder
                    .iter()
                    .map(|name| RungReport::unreached(name))
                    .collect(),
                answered_by: None,
                total_work: 0,
            }),
        }
    }

    /// A rejected-snapshot failure.
    fn snapshot_failure(&self, matrix: &LoadMatrix, m: usize, reason: String) -> DriverFailure {
        self.failure_before_rungs(matrix, m, RectpartError::SnapshotCorrupt { reason })
    }
}

/// Semantic validation of a snapshot against the instance being
/// resumed. The file-format layer (`rectpart-resume`) has already
/// verified the checksum footer; this layer rejects snapshots that are
/// structurally sound but describe a different problem.
fn validate_progress(
    progress: &SolveProgress,
    rungs: &[(String, Box<dyn Partitioner>)],
    matrix: &LoadMatrix,
    m: usize,
) -> Result<(), String> {
    if progress.rows != matrix.rows() || progress.cols != matrix.cols() {
        return Err(format!(
            "snapshot is for a {}x{} instance, got {}x{}",
            progress.rows,
            progress.cols,
            matrix.rows(),
            matrix.cols()
        ));
    }
    if progress.m != m {
        return Err(format!("snapshot is for m={}, got m={m}", progress.m));
    }
    let fp = matrix_fingerprint(matrix);
    if progress.matrix_fingerprint != fp {
        return Err(format!(
            "matrix fingerprint mismatch: snapshot {:#018x}, instance {fp:#018x}",
            progress.matrix_fingerprint
        ));
    }
    if rungs.len() != progress.ladder.len()
        || rungs
            .iter()
            .zip(&progress.ladder)
            .any(|((name, _), want)| name != want)
    {
        return Err("resolved rungs do not match the snapshot ladder".into());
    }
    if progress.ladder.is_empty() {
        return Err("snapshot ladder is empty".into());
    }
    if progress.next_rung > progress.ladder.len() {
        return Err(format!(
            "snapshot next_rung {} exceeds ladder length {}",
            progress.next_rung,
            progress.ladder.len()
        ));
    }
    if progress.rungs.len() != progress.next_rung {
        return Err(format!(
            "snapshot holds {} rung reports but next_rung is {}",
            progress.rungs.len(),
            progress.next_rung
        ));
    }
    if progress.trips.len() != progress.ladder.len() {
        return Err(format!(
            "snapshot holds {} trip counters for a {}-rung ladder",
            progress.trips.len(),
            progress.ladder.len()
        ));
    }
    Ok(())
}
