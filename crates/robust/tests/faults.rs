//! Deterministic fault-injection tests (feature `faultinject`).
//!
//! Every [`RectpartError`] variant and every default-ladder rung is
//! exercised here under seeded, reproducible fault plans. Fault plans
//! and the work meter are process-global, so every test serializes on
//! [`lock`] and clears its plan before releasing it.
#![cfg(feature = "faultinject")]

use std::sync::{Mutex, MutexGuard, OnceLock};

use rectpart_core::{LoadMatrix, Partition, Partitioner, PrefixSum2D, Rect, RectpartError};
use rectpart_parallel::with_threads;
use rectpart_robust::{FaultPlan, RungOutcome, SolverDriver, DEFAULT_LADDER};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn demo_matrix() -> LoadMatrix {
    LoadMatrix::from_fn(16, 12, |r, c| ((r * 31 + c * 17) % 97 + 1) as u32)
}

#[test]
fn forced_overflow_surfaces_a_structured_error() {
    let _g = lock();
    FaultPlan::new().force_overflow().install();
    let err = SolverDriver::new()
        .try_solve(&demo_matrix(), 4)
        .unwrap_err();
    FaultPlan::clear();
    assert_eq!(err.error, RectpartError::Overflow);
    assert!(err.error.is_input_error());
    assert!(err
        .report
        .rungs
        .iter()
        .all(|r| r.outcome == RungOutcome::NotReached));
    // With the plan cleared the same instance solves fine.
    assert!(SolverDriver::new().try_solve(&demo_matrix(), 4).is_ok());
}

#[test]
fn inflated_work_exhausts_a_budget_that_normally_suffices() {
    let _g = lock();
    // Unfaulted, a 1M-unit budget admits the optimal rung (see the
    // driver tests). A ×1000 work inflation makes Γ construction alone
    // (16·12 + 1 = 193 units) cost 193 000 units, so a 100k budget is
    // spent before any rung is admitted.
    FaultPlan::new().inflate_work(1000).install();
    let err = SolverDriver::new()
        .with_budget(100_000)
        .try_solve(&demo_matrix(), 4)
        .unwrap_err();
    FaultPlan::clear();
    assert!(matches!(
        err.error,
        RectpartError::BudgetExhausted {
            budget: 100_000,
            spent
        } if spent >= 193_000
    ));
    assert!(err
        .report
        .rungs
        .iter()
        .all(|r| matches!(r.outcome, RungOutcome::SkippedEstimate { .. })));
}

#[test]
fn injected_rung_panics_walk_the_whole_ladder() {
    let _g = lock();
    let driver = SolverDriver::new();
    let matrix = demo_matrix();

    // Rung 0 panics → the first heuristic answers.
    FaultPlan::new().panic_rung(0).install();
    let out = driver.try_solve(&matrix, 6).unwrap();
    FaultPlan::clear();
    assert_eq!(
        out.report.rungs[0].outcome,
        RungOutcome::Failed {
            error: RectpartError::WorkerPanic {
                rung: DEFAULT_LADDER[0].into()
            }
        }
    );
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[1]));

    // Rungs 0 and 1 panic → the closed-form grid answers.
    FaultPlan::new().panic_rung(0).panic_rung(1).install();
    let out = driver.try_solve(&matrix, 6).unwrap();
    FaultPlan::clear();
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[2]));

    // Every rung panics → the run fails, naming the last rung, with
    // the full ladder record attached.
    FaultPlan::new()
        .panic_rung(0)
        .panic_rung(1)
        .panic_rung(2)
        .install();
    let err = driver.try_solve(&matrix, 6).unwrap_err();
    FaultPlan::clear();
    assert_eq!(
        err.error,
        RectpartError::WorkerPanic {
            rung: DEFAULT_LADDER[2].into()
        }
    );
    assert!(err.report.rungs.iter().all(|r| matches!(
        r.outcome,
        RungOutcome::Failed {
            error: RectpartError::WorkerPanic { .. }
        }
    )));
}

/// Returns a single 1×1 rectangle: an incomplete cover.
struct BadCover;
impl Partitioner for BadCover {
    fn name(&self) -> String {
        "BAD-COVER".into()
    }
    fn partition(&self, _pfx: &PrefixSum2D, m: usize) -> Partition {
        Partition::with_parts(vec![Rect::new(0, 1, 0, 1)], m)
    }
}

#[test]
fn every_input_error_variant_is_reachable() {
    let _g = lock();
    let driver = SolverDriver::new();

    // RaggedRow / DimMismatch at the constructor boundary.
    assert_eq!(
        LoadMatrix::try_from_rows(&[vec![1, 2], vec![3]]).unwrap_err(),
        RectpartError::RaggedRow {
            row: 1,
            expected: 2,
            got: 1
        }
    );
    assert_eq!(
        LoadMatrix::try_from_vec(2, 3, vec![1, 2, 3, 4]).unwrap_err(),
        RectpartError::DimMismatch {
            rows: 2,
            cols: 3,
            len: 4
        }
    );

    // EmptyMatrix / ZeroParts / TooManyParts at the driver boundary.
    let empty = LoadMatrix::zeros(0, 0);
    assert_eq!(
        driver.try_solve(&empty, 1).unwrap_err().error,
        RectpartError::EmptyMatrix { rows: 0, cols: 0 }
    );
    let tiny = LoadMatrix::from_vec(2, 2, vec![1, 2, 3, 4]);
    assert_eq!(
        driver.try_solve(&tiny, 0).unwrap_err().error,
        RectpartError::ZeroParts
    );
    assert_eq!(
        driver.try_solve(&tiny, 9).unwrap_err().error,
        RectpartError::TooManyParts { m: 9, cells: 4 }
    );

    // UnknownAlgorithm at ladder resolution.
    let err = SolverDriver::new()
        .with_ladder(["NOPE"])
        .try_solve(&tiny, 2)
        .unwrap_err();
    assert_eq!(err.error, RectpartError::UnknownAlgorithm("NOPE".into()));

    // InvalidSolution when a rung returns a bad cover.
    let rungs: Vec<(String, Box<dyn Partitioner>)> = vec![("BAD-COVER".into(), Box::new(BadCover))];
    let err = driver.try_solve_with(rungs, &tiny, 2).unwrap_err();
    assert!(matches!(err.error, RectpartError::InvalidSolution(_)));
}

#[test]
fn injected_worker_panics_do_not_change_the_answer() {
    let _g = lock();
    let matrix = demo_matrix();
    let driver = SolverDriver::new();

    let clean = driver.try_solve(&matrix, 6).unwrap();
    FaultPlan::new()
        .panic_worker(0)
        .panic_worker(1)
        .panic_worker(5)
        .install();
    let faulted = driver.try_solve(&matrix, 6).unwrap();
    FaultPlan::clear();
    // Panicked map_range workers are retried sequentially one layer
    // down; the partition, the rung record and the deterministic work
    // totals all survive unchanged.
    assert_eq!(clean.partition, faulted.partition);
    assert_eq!(clean.report, faulted.report);
}

#[test]
fn seeded_plan_reports_are_bit_identical_across_thread_counts() {
    let _g = lock();
    // Pick the first seed whose derived plan panics rung 0, so the
    // degradation path (not just the happy path) is what must agree.
    let seed = (0..200u64)
        .find(|&s| FaultPlan::seeded(s).config().panic_rungs == vec![0])
        .expect("no seed in 0..200 selects rung 0");
    let plan = FaultPlan::seeded(seed);

    let run = |threads: usize| {
        plan.install();
        let result = with_threads(threads, || SolverDriver::new().try_solve(&demo_matrix(), 6));
        FaultPlan::clear();
        result
    };

    let serial = run(1);
    for threads in [2, 4, 7] {
        let parallel = run(threads);
        assert_eq!(serial, parallel, "threads={threads}");
    }
    // And the degradation actually happened: rung 0 failed, rung 1
    // answered.
    let out = serial.unwrap();
    assert!(matches!(
        out.report.rungs[0].outcome,
        RungOutcome::Failed { .. }
    ));
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[1]));
}
