//! Driver behaviour tests that need no fault injection: ladder
//! demotion on panics and invalid covers, budget admission, and the
//! structured error paths.
//!
//! Budget assertions read the process-global work meter, so every test
//! in this binary serializes on [`lock`]; without it a concurrently
//! running solve would inflate another test's measured spend.

use std::sync::{Mutex, MutexGuard, OnceLock};

use rectpart_core::{LoadMatrix, Partition, Partitioner, PrefixSum2D, Rect, RectpartError};
use rectpart_robust::{RungOutcome, SolverDriver, DEFAULT_LADDER};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn demo_matrix() -> LoadMatrix {
    LoadMatrix::from_fn(8, 8, |r, c| (3 * r + 5 * c + 1) as u32)
}

/// Returns a single 1×1 rectangle regardless of the instance: an
/// incomplete cover that must be rejected by solution validation.
struct BadCover;
impl Partitioner for BadCover {
    fn name(&self) -> String {
        "BAD-COVER".into()
    }
    fn partition(&self, _pfx: &PrefixSum2D, m: usize) -> Partition {
        Partition::with_parts(vec![Rect::new(0, 1, 0, 1)], m)
    }
}

/// Panics unconditionally: the driver must contain it and demote.
struct Panicker;
impl Partitioner for Panicker {
    fn name(&self) -> String {
        "PANICKER".into()
    }
    fn partition(&self, _pfx: &PrefixSum2D, _m: usize) -> Partition {
        panic!("deterministic rung panic");
    }
}

#[test]
fn unbudgeted_solve_answers_with_first_rung() {
    let _g = lock();
    let out = SolverDriver::new().try_solve(&demo_matrix(), 4).unwrap();
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[0]));
    assert_eq!(out.report.rungs.len(), DEFAULT_LADDER.len());
    assert!(matches!(
        out.report.rungs[0].outcome,
        RungOutcome::Answered { .. }
    ));
    for r in &out.report.rungs[1..] {
        assert_eq!(r.outcome, RungOutcome::NotReached);
        assert_eq!(r.work, 0);
    }
    let pfx = PrefixSum2D::new(&demo_matrix());
    assert!(out.partition.validate(&pfx).is_ok());
    let RungOutcome::Answered { lmax } = out.report.rungs[0].outcome else {
        unreachable!()
    };
    assert_eq!(lmax, out.partition.lmax(&pfx));
    assert!(out.report.total_work > out.report.rungs[0].work);
}

#[test]
fn tight_budget_skips_the_optimal_and_degrades_to_a_heuristic() {
    let _g = lock();
    // Γ charges 65 units for 8×8; the optimal rung estimates 320 for
    // m=4 and the heuristic 128, so a 250-unit budget must skip the DP
    // and answer with the heuristic.
    let out = SolverDriver::new()
        .with_budget(250)
        .try_solve(&demo_matrix(), 4)
        .unwrap();
    assert!(matches!(
        out.report.rungs[0].outcome,
        RungOutcome::SkippedEstimate { .. }
    ));
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[1]));
    assert_eq!(out.report.budget, Some(250));
}

#[test]
fn exhausted_budget_fails_with_structured_error_and_full_report() {
    let _g = lock();
    // 10 units cannot even cover Γ construction (65 units), so every
    // rung — including the always-admitted last one, which requires a
    // nonzero remainder — is skipped.
    let err = SolverDriver::new()
        .with_budget(10)
        .try_solve(&demo_matrix(), 4)
        .unwrap_err();
    assert!(matches!(
        err.error,
        RectpartError::BudgetExhausted { budget: 10, .. }
    ));
    assert!(!err.error.is_input_error());
    assert_eq!(err.report.rungs.len(), DEFAULT_LADDER.len());
    for r in &err.report.rungs {
        assert!(matches!(r.outcome, RungOutcome::SkippedEstimate { .. }));
    }
    assert!(err.report.total_work >= 65);
}

#[test]
fn generous_budget_admits_the_optimal_rung() {
    let _g = lock();
    let out = SolverDriver::new()
        .with_budget(1_000_000)
        .try_solve(&demo_matrix(), 4)
        .unwrap();
    assert_eq!(out.report.answered_by.as_deref(), Some(DEFAULT_LADDER[0]));
}

#[test]
fn panicking_rung_demotes_to_the_next() {
    let _g = lock();
    let rungs: Vec<(String, Box<dyn Partitioner>)> = vec![
        ("PANICKER".into(), Box::new(Panicker)),
        (
            "RECT-UNIFORM".into(),
            Box::new(rectpart_core::RectUniform::default()),
        ),
    ];
    let out = SolverDriver::new()
        .try_solve_with(rungs, &demo_matrix(), 4)
        .unwrap();
    assert_eq!(
        out.report.rungs[0].outcome,
        RungOutcome::Failed {
            error: RectpartError::WorkerPanic {
                rung: "PANICKER".into()
            }
        }
    );
    assert_eq!(out.report.answered_by.as_deref(), Some("RECT-UNIFORM"));
}

#[test]
fn all_rungs_panicking_surfaces_worker_panic() {
    let _g = lock();
    let rungs: Vec<(String, Box<dyn Partitioner>)> = vec![
        ("P1".into(), Box::new(Panicker)),
        ("P2".into(), Box::new(Panicker)),
    ];
    let err = SolverDriver::new()
        .try_solve_with(rungs, &demo_matrix(), 4)
        .unwrap_err();
    assert_eq!(err.error, RectpartError::WorkerPanic { rung: "P2".into() });
    assert_eq!(err.report.answered_by, None);
}

#[test]
fn invalid_cover_demotes_with_invalid_solution_error() {
    let _g = lock();
    let rungs: Vec<(String, Box<dyn Partitioner>)> = vec![
        ("BAD-COVER".into(), Box::new(BadCover)),
        (
            "RECT-UNIFORM".into(),
            Box::new(rectpart_core::RectUniform::default()),
        ),
    ];
    let out = SolverDriver::new()
        .try_solve_with(rungs, &demo_matrix(), 4)
        .unwrap();
    assert!(matches!(
        out.report.rungs[0].outcome,
        RungOutcome::Failed {
            error: RectpartError::InvalidSolution(_)
        }
    ));
    assert_eq!(out.report.answered_by.as_deref(), Some("RECT-UNIFORM"));
}

#[test]
fn input_errors_are_rejected_before_any_rung_runs() {
    let _g = lock();
    let driver = SolverDriver::new();
    let empty = LoadMatrix::from_fn(0, 5, |_, _| 0);
    let err = driver.try_solve(&empty, 3).unwrap_err();
    assert_eq!(err.error, RectpartError::EmptyMatrix { rows: 0, cols: 5 });
    assert!(err.error.is_input_error());
    assert!(err
        .report
        .rungs
        .iter()
        .all(|r| r.outcome == RungOutcome::NotReached));

    let m2 = LoadMatrix::from_fn(2, 2, |_, _| 1);
    let err = driver.try_solve(&m2, 0).unwrap_err();
    assert_eq!(err.error, RectpartError::ZeroParts);
    let err = driver.try_solve(&m2, 5).unwrap_err();
    assert_eq!(err.error, RectpartError::TooManyParts { m: 5, cells: 4 });
}

#[test]
fn unknown_ladder_name_is_an_input_error() {
    let _g = lock();
    let err = SolverDriver::new()
        .with_ladder(["NO-SUCH-ALGORITHM"])
        .try_solve(&demo_matrix(), 4)
        .unwrap_err();
    assert_eq!(
        err.error,
        RectpartError::UnknownAlgorithm("NO-SUCH-ALGORITHM".into())
    );
    assert!(err.error.is_input_error());
}

#[test]
fn ladder_names_resolve_case_insensitively() {
    let _g = lock();
    let out = SolverDriver::new()
        .with_ladder(["rect-uniform"])
        .try_solve(&demo_matrix(), 4)
        .unwrap();
    assert_eq!(out.report.answered_by.as_deref(), Some("rect-uniform"));
}

#[test]
fn report_display_is_human_readable() {
    let _g = lock();
    let out = SolverDriver::new()
        .with_budget(250)
        .try_solve(&demo_matrix(), 4)
        .unwrap();
    let text = out.report.to_string();
    assert!(text.contains("budget 250 units"), "{text}");
    assert!(text.contains("skipped"), "{text}");
    assert!(text.contains("answered"), "{text}");
}
