//! Property tests over the fallible boundary: for arbitrary small
//! instances and every registered algorithm, `try_solve` must either
//! return a validated partition with the correct bottleneck or a
//! structured input error — never panic.
//!
//! These tests deliberately use unbudgeted drivers and make no
//! assertions about work quantities: the work meter is process-global
//! and the cases in this binary run concurrently.

use proptest::prelude::*;
use rectpart_core::{algorithm_names, LoadMatrix, PrefixSum2D};
use rectpart_robust::SolverDriver;

fn arb_instance() -> impl Strategy<Value = (usize, usize, Vec<u32>, usize)> {
    (1usize..7, 1usize..7).prop_flat_map(|(rows, cols)| {
        (
            Just(rows),
            Just(cols),
            vec(0u32..10_000, rows * cols),
            1usize..=12,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_algorithm_answers_or_rejects_structurally(inst in arb_instance()) {
        let (rows, cols, data, m) = inst;
        let matrix = LoadMatrix::from_vec(rows, cols, data);
        for name in algorithm_names() {
            let driver = SolverDriver::new().with_ladder([name.clone()]);
            match driver.try_solve(&matrix, m) {
                Ok(out) => {
                    let pfx = PrefixSum2D::new(&matrix);
                    prop_assert!(out.partition.validate(&pfx).is_ok(),
                        "{name}: invalid cover on {rows}x{cols} m={m}");
                    prop_assert_eq!(out.report.answered_by.as_deref(), Some(name.as_str()));
                    // The reported bottleneck is the real maximum load.
                    let loads = out.partition.loads(&pfx);
                    let lmax = loads.iter().copied().max().unwrap_or(0);
                    prop_assert_eq!(out.partition.lmax(&pfx), lmax);
                }
                Err(failure) => {
                    // On a well-formed instance the only legitimate
                    // rejection is an input error (here: m > cells).
                    prop_assert!(failure.error.is_input_error(),
                        "{name}: unexpected error {} on {rows}x{cols} m={m}", failure.error);
                    prop_assert!(m > rows * cols,
                        "{name}: input error {} on feasible {rows}x{cols} m={m}", failure.error);
                }
            }
        }
    }

    #[test]
    fn default_ladder_always_answers_feasible_instances(inst in arb_instance()) {
        let (rows, cols, data, m) = inst;
        let matrix = LoadMatrix::from_vec(rows, cols, data);
        if m > rows * cols {
            return;
        }
        let out = SolverDriver::new().try_solve(&matrix, m).unwrap();
        let pfx = PrefixSum2D::new(&matrix);
        prop_assert!(out.partition.validate(&pfx).is_ok());
        prop_assert_eq!(out.partition.parts(), m);
        prop_assert!(out.report.answered_by.is_some());
    }
}

#[test]
fn degenerate_instances_never_panic() {
    let driver = SolverDriver::new();
    // All-zero load: any m is fine, bottleneck 0.
    let zeros = LoadMatrix::zeros(3, 3);
    let out = driver.try_solve(&zeros, 9).unwrap();
    assert_eq!(out.partition.lmax(&PrefixSum2D::new(&zeros)), 0);
    // Single cell.
    let one = LoadMatrix::from_vec(1, 1, vec![7]);
    let out = driver.try_solve(&one, 1).unwrap();
    assert_eq!(out.partition.lmax(&PrefixSum2D::new(&one)), 7);
    // Degenerate strips.
    for (rows, cols) in [(1usize, 6usize), (6, 1)] {
        let strip = LoadMatrix::from_fn(rows, cols, |r, c| (r + c) as u32 + 1);
        let out = driver.try_solve(&strip, 3).unwrap();
        assert!(out.partition.validate(&PrefixSum2D::new(&strip)).is_ok());
    }
}
