//! Always-on deterministic work meter.
//!
//! Unlike the `obs`-gated [`Counter`](crate::Counter)s, the work meter is
//! compiled unconditionally: the fault-tolerant solver driver
//! (`rectpart-robust`) budgets solver rungs in *work units*, not wall
//! clock, so the meter must exist in every build. It is a single global
//! relaxed `AtomicU64`; instrumented call sites accumulate locally and
//! charge once per logical operation (one probe sweep, one DP row, one Γ
//! build), so the overhead is one atomic add per call rather than per
//! inner step.
//!
//! # Determinism
//!
//! Charges are decided by the algorithm — cells touched, probe sweeps,
//! bisection steps — never by scheduling, and addition commutes. The
//! total observed at any *serial* checkpoint between parallel regions is
//! therefore bit-identical at any thread count (lint L3), which is what
//! lets the driver's budget decisions and `DegradationReport`s stay
//! reproducible.

use std::sync::atomic::{AtomicU64, Ordering};

static WORK: AtomicU64 = AtomicU64::new(0);

/// With `faultinject` on, every charge is multiplied by the installed
/// plan's `work_multiplier` (cached here so the hot path never locks).
#[cfg(feature = "faultinject")]
pub(crate) static MULTIPLIER: AtomicU64 = AtomicU64::new(1);

/// Charge `n` abstract work units to the global meter. The (possibly
/// fault-multiplied) amount is also attributed to the innermost open
/// span on the calling thread, which is what gives span nodes their
/// deterministic work totals.
#[inline]
pub fn charge(n: u64) {
    #[cfg(feature = "faultinject")]
    let n = n.saturating_mul(MULTIPLIER.load(Ordering::Relaxed));
    WORK.fetch_add(n, Ordering::Relaxed);
    crate::span::attribute(n);
}

/// Total work charged since the last [`reset`].
#[inline]
pub fn spent() -> u64 {
    WORK.load(Ordering::Relaxed)
}

/// Zero the meter.
pub fn reset() {
    WORK.store(0, Ordering::Relaxed);
}

/// A saved meter position for measuring the work spent in a region.
///
/// Only meaningful when taken and read at serial checkpoints (no
/// parallel region still charging in the background); the solver driver
/// brackets every rung this way.
#[derive(Clone, Copy, Debug)]
pub struct Mark(u64);

impl Mark {
    /// Capture the current meter position.
    #[inline]
    pub fn now() -> Mark {
        Mark(spent())
    }

    /// Work charged since this mark was taken (saturating).
    #[inline]
    pub fn elapsed(&self) -> u64 {
        spent().saturating_sub(self.0)
    }
}

// With `faultinject` on, the fault-module roundtrip test owns the global
// meter (it asserts multiplied charges); this test would race it.
#[cfg(all(test, not(feature = "faultinject")))]
mod tests {
    use super::*;

    // One test so nothing else in this binary races the global meter.
    #[test]
    fn charge_mark_reset_roundtrip() {
        reset();
        charge(10);
        let mark = Mark::now();
        charge(32);
        assert_eq!(mark.elapsed(), 32);
        assert!(spent() >= 42);
        reset();
        assert_eq!(spent(), 0);
    }
}
