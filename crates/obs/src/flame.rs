//! Collapsed-stack ("folded") exporter for the span subsystem.
//!
//! Emits the `frame;frame;frame weight` text format consumed by
//! flamegraph tooling (`flamegraph.pl`, `inferno-flamegraph`, speedscope
//! imports). Each line is one node of the canonical span tree with its
//! **self** weight in deterministic work units — not wall time — so the
//! rendered flame graph is bit-identical at any thread count, exactly
//! like the counters it sits on.
//!
//! Every stack is rooted under a synthetic `rectpart` frame so charges
//! made outside any span (the tree's root node) still get a line.

use crate::span::{self, SpanNode};

/// Render an explicit tree snapshot as collapsed stacks (pure; the
/// [`collapsed`] wrapper feeds it the live tree).
pub fn collapsed_from(nodes: &[SpanNode]) -> String {
    let mut out = String::new();
    for node in nodes {
        out.push_str("rectpart");
        if !node.path.is_empty() {
            out.push(';');
            out.push_str(&node.path_string());
        }
        out.push(' ');
        out.push_str(&node.work.to_string());
        out.push('\n');
    }
    out
}

/// Export the canonical span tree as collapsed stacks. With the `obs`
/// feature off the output is empty.
pub fn collapsed() -> String {
    collapsed_from(&span::snapshot_tree())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Synthetic nodes only: the live tree is process-global and owned by
    // the roundtrip test in `lib.rs`.
    #[test]
    fn folded_lines_carry_self_work_weights() {
        let nodes = [
            SpanNode {
                path: vec![],
                count: 0,
                work: 2,
                wall_ns: 0,
            },
            SpanNode {
                path: vec![("cli.partition", 0)],
                count: 1,
                work: 10,
                wall_ns: 99,
            },
            SpanNode {
                path: vec![("cli.partition", 0), ("core.hier.level", 3)],
                count: 4,
                work: 7,
                wall_ns: 50,
            },
        ];
        let folded = collapsed_from(&nodes);
        assert_eq!(
            folded,
            "rectpart 2\n\
             rectpart;cli.partition 10\n\
             rectpart;cli.partition;core.hier.level#3 7\n"
        );
    }

    #[test]
    fn empty_tree_folds_to_nothing() {
        assert_eq!(collapsed_from(&[]), "");
    }
}
