//! Deterministic fault injection (default-off `faultinject` feature).
//!
//! A [`FaultConfig`] installed process-wide tells instrumented sites to
//! misbehave on purpose: panic the k-th spawned worker before it runs
//! its unit, panic a driver rung at entry, report overflow from the next
//! Γ construction, or inflate every work charge by a factor. The hooks
//! are queried by `rectpart-parallel`, `rectpart-core`, and
//! `rectpart-robust`; with the feature off none of this module exists
//! and the query shims in those crates compile to `false`/`1`.
//!
//! # Determinism
//!
//! Worker panics fire *before the worker executes any of its unit*, and
//! the recovery path re-runs the unit on the forking thread — so a fault
//! plan perturbs scheduling-exempt [`ExecStat`](crate::ExecStat)s only,
//! never work totals or solver output. This is what lets the acceptance
//! test demand bit-identical `DegradationReport`s at 1 and N threads
//! under the same seeded plan.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A process-wide fault plan. Install with [`install`], remove with
/// [`clear`]; tests hold a serialization lock around the pair.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed the plan was derived from (recorded for reproduction; the
    /// derivation itself lives in `rectpart-robust::FaultPlan`).
    pub seed: u64,
    /// Spawn indices (0-based, counted process-wide since `install`) of
    /// worker threads that panic on startup, before executing anything.
    pub panic_workers: Vec<u64>,
    /// Solver-driver rung indices whose solve panics at entry.
    pub panic_rungs: Vec<u64>,
    /// Report `Overflow` from every Γ construction while installed.
    pub force_gamma_overflow: bool,
    /// Multiply every work charge by this factor (`0`/`1` = off).
    pub work_multiplier: u64,
}

static PLAN: Mutex<Option<FaultConfig>> = Mutex::new(None);
static WORKER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Locks the plan, shrugging off poisoning: the plan is a plain value
/// (replaced wholesale, never mutated in place), so a lock abandoned by
/// a panicking test still guards a coherent plan.
fn lock_plan() -> MutexGuard<'static, Option<FaultConfig>> {
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install `cfg` process-wide, resetting the worker spawn sequence.
pub fn install(cfg: FaultConfig) {
    super::work::MULTIPLIER.store(cfg.work_multiplier.max(1), Ordering::Relaxed);
    WORKER_SEQ.store(0, Ordering::Relaxed);
    *lock_plan() = Some(cfg);
}

/// Remove any installed plan.
pub fn clear() {
    super::work::MULTIPLIER.store(1, Ordering::Relaxed);
    *lock_plan() = None;
}

/// The currently installed plan, if any.
pub fn active() -> Option<FaultConfig> {
    lock_plan().clone()
}

/// Called by each spawned worker before it touches its unit: claims the
/// next spawn index and reports whether this worker must panic.
///
/// The sequence only advances while a plan with panic targets is
/// installed, so unrelated parallel work does not consume indices.
pub fn worker_should_panic() -> bool {
    let guard = lock_plan();
    let Some(cfg) = guard.as_ref() else {
        return false;
    };
    if cfg.panic_workers.is_empty() {
        return false;
    }
    let idx = WORKER_SEQ.fetch_add(1, Ordering::Relaxed);
    cfg.panic_workers.contains(&idx)
}

/// Whether the driver rung at `rung` (0-based ladder position) must
/// panic at entry.
pub fn rung_should_panic(rung: u64) -> bool {
    lock_plan()
        .as_ref()
        .is_some_and(|cfg| cfg.panic_rungs.contains(&rung))
}

/// Whether Γ construction must report overflow.
pub fn gamma_should_overflow() -> bool {
    lock_plan()
        .as_ref()
        .is_some_and(|cfg| cfg.force_gamma_overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test so nothing else in this binary races the global plan.
    #[test]
    fn install_query_clear_roundtrip() {
        clear();
        assert!(active().is_none());
        assert!(!worker_should_panic());
        assert!(!rung_should_panic(0));
        assert!(!gamma_should_overflow());

        install(FaultConfig {
            seed: 7,
            panic_workers: vec![1],
            panic_rungs: vec![0],
            force_gamma_overflow: true,
            work_multiplier: 3,
        });
        assert_eq!(active().map(|c| c.seed), Some(7));
        assert!(!worker_should_panic()); // spawn index 0
        assert!(worker_should_panic()); // spawn index 1
        assert!(!worker_should_panic()); // spawn index 2
        assert!(rung_should_panic(0));
        assert!(!rung_should_panic(1));
        assert!(gamma_should_overflow());

        crate::work::reset();
        crate::work::charge(5);
        assert_eq!(crate::work::spent(), 15);

        clear();
        crate::work::reset();
        crate::work::charge(5);
        assert_eq!(crate::work::spent(), 5);
        assert!(active().is_none());
    }
}
