//! Structured snapshot of the recorder state, serializable via
//! `rectpart-json`.

use rectpart_json::Json;

use crate::TracePoint;

/// The determinism-covered sections of a [`Report`]:
/// `(counters, shard_inserts, traces, spans)`. The span component is the
/// *work-anchored* tree view — `(path, count, self work)` per node, wall
/// time excluded.
pub type DeterministicView = (
    Vec<(&'static str, u64)>,
    Vec<u64>,
    Vec<(&'static str, Vec<TracePoint>)>,
    Vec<(String, u64, u64)>,
);

/// A point-in-time snapshot of every observable, as produced by
/// [`Recorder::snapshot`](crate::Recorder::snapshot).
///
/// The `counters`, `shard_inserts`, and `traces` sections are covered by
/// the determinism contract (bit-identical at any thread count); `exec`
/// and `phases_ns` are thread- and wall-clock-dependent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Report {
    /// Whether the `obs` feature was compiled in.
    pub enabled: bool,
    /// Work counters as `(name, value)` in [`crate::Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Execution stats as `(name, value)` in [`crate::ExecStat::ALL`] order.
    pub exec: Vec<(&'static str, u64)>,
    /// Phase timers in nanoseconds, in [`crate::Phase::ALL`] order.
    pub phases_ns: Vec<(&'static str, u64)>,
    /// Stripe-cache first-inserts per shard, trailing zeros trimmed.
    pub shard_inserts: Vec<u64>,
    /// Convergence traces as `(name, sorted points)` in
    /// [`crate::TraceId::ALL`] order.
    pub traces: Vec<(&'static str, Vec<TracePoint>)>,
    /// Merged span tree as `(path, count, self work)` sorted by path —
    /// the work-anchored view of [`crate::span::snapshot_tree`]. Wall
    /// times are deliberately absent: they live in the Chrome-trace
    /// export, not in the deterministic report.
    pub spans: Vec<(String, u64, u64)>,
}

impl Report {
    /// True when nothing was recorded — in particular, always true for
    /// snapshots taken with the `obs` feature disabled.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.exec.is_empty()
            && self.phases_ns.is_empty()
            && self.shard_inserts.is_empty()
            && self.traces.is_empty()
            && self.spans.is_empty()
    }

    /// Look up a counter, exec stat, or phase timer by its JSON name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .chain(&self.exec)
            .chain(&self.phases_ns)
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Just the deterministic sections, for differential comparison.
    /// Timing-free by construction: exec stats and phase timers are
    /// excluded.
    pub fn deterministic_view(&self) -> DeterministicView {
        (
            self.counters.clone(),
            self.shard_inserts.clone(),
            self.traces.clone(),
            self.spans.clone(),
        )
    }

    /// Stripe-cache hit rate over `[0, 1]`, or `None` before any lookup.
    pub fn stripe_cache_hit_rate(&self) -> Option<f64> {
        let lookups = self.get("core.stripe_cache.lookups")?;
        let misses = self.get("core.stripe_cache.misses")?;
        if lookups == 0 {
            return None;
        }
        Some((lookups - misses) as f64 / lookups as f64)
    }

    /// Serialize to the stats JSON schema documented in DESIGN.md §10.
    pub fn to_json(&self) -> Json {
        if !self.enabled {
            return Json::obj(vec![("enabled", Json::Bool(false))]);
        }
        let section = |pairs: &[(&'static str, u64)]| {
            Json::Obj(
                pairs
                    .iter()
                    .map(|&(k, v)| (k.to_string(), Json::UInt(v)))
                    .collect(),
            )
        };
        let mut derived = Vec::new();
        let lookups = self.get("core.stripe_cache.lookups").unwrap_or(0);
        let misses = self.get("core.stripe_cache.misses").unwrap_or(0);
        derived.push(("core.stripe_cache.hits", Json::UInt(lookups - misses)));
        if let Some(rate) = self.stripe_cache_hit_rate() {
            derived.push(("core.stripe_cache.hit_rate", Json::Float(rate)));
        }
        Json::obj(vec![
            ("enabled", Json::Bool(true)),
            ("counters", section(&self.counters)),
            ("derived", Json::obj(derived)),
            ("execution", section(&self.exec)),
            ("timing_ns", section(&self.phases_ns)),
            (
                "stripe_cache_shard_inserts",
                Json::Arr(self.shard_inserts.iter().map(|&n| Json::UInt(n)).collect()),
            ),
            (
                "traces",
                Json::Obj(
                    self.traces
                        .iter()
                        .map(|(name, points)| {
                            (
                                name.to_string(),
                                Json::Arr(
                                    points
                                        .iter()
                                        .map(|&(series, step, value)| {
                                            Json::Arr(vec![
                                                Json::UInt(series),
                                                Json::UInt(step),
                                                Json::UInt(value),
                                            ])
                                        })
                                        .collect(),
                                ),
                            )
                        })
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Obj(
                    self.spans
                        .iter()
                        .map(|(path, count, work)| {
                            (
                                path.clone(),
                                Json::obj(vec![
                                    ("count", Json::UInt(*count)),
                                    ("work", Json::UInt(*work)),
                                ]),
                            )
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl rectpart_json::ToJson for Report {
    fn to_json(&self) -> Json {
        Report::to_json(self)
    }
}
