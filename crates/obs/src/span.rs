//! Hierarchical span tracing: nested enter/exit guards carrying wall
//! time **and** deterministic work-unit deltas.
//!
//! # Model
//!
//! A span is a named region of the solver stack ([`SpanKind`], plus a
//! small integer argument for recursion depth / rung index). Spans nest:
//! each thread keeps a frame stack, and a finished span records the full
//! path from the outermost open frame down to itself. Records are
//! buffered per-thread and merged into one process-wide canonical tree
//! keyed by path.
//!
//! Every span accumulates two quantities:
//!
//! * **work** — the [`crate::work::charge`] units charged while the span
//!   was the innermost open frame on its thread (*self* work, exclusive
//!   of children). Work charges are algorithm-decided, so per-path work
//!   totals are part of the determinism contract.
//! * **wall** — elapsed nanoseconds between enter and exit. Wall time is
//!   scheduling-dependent and therefore *excluded* from the
//!   work-anchored view (same split as `Counter` vs `ExecStat`).
//!
//! # Determinism across thread counts
//!
//! The parallel layer (`crates/parallel`) captures the forking thread's
//! span path with [`fork_context`] before spawning and installs it in
//! each worker with [`adopt`]. Worker-side spans therefore record the
//! same paths the serial execution would have produced, and worker-side
//! charges made outside any local span are flushed as *fragments*:
//! additive `(path, work)` records that merge into the adopting path's
//! node without bumping its span count. Summed per path, counts and work
//! are bit-identical at any thread count; this is enforced by the span
//! case of `crates/core/tests/obs_differential.rs`.
//!
//! Span guards must **not** be carried across the fork boundaries of
//! `crates/parallel` (a guard entered on the forking thread and dropped
//! on a worker would corrupt both stacks); lint L3 rejects `span::enter`
//! / `SpanGuard` in that crate, and the adoption API above is the
//! sanctioned alternative.
//!
//! # Zero overhead when disabled
//!
//! With the `obs` feature off, [`SpanGuard`], [`ForkCtx`] and
//! [`AdoptGuard`] are zero-sized and every function here is an empty
//! `#[inline(always)]` body; size assertions in the crate tests pin
//! this.

/// Static identity of a span site. Like [`crate::Counter`], the set is
/// closed and each kind carries a stable dotted name.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum SpanKind {
    /// CLI input phase (CSV read).
    CliIo,
    /// CLI partitioning phase (algorithm or driver run).
    CliPartition,
    /// CLI validation phase.
    CliValidate,
    /// Blocked dense Γ construction.
    GammaDense,
    /// CSR-like sparse Γ construction.
    GammaSparse,
    /// One optimal 1-D solve (`nicol` / `nicol_bottleneck`).
    NicolSolve,
    /// Recursive-bisection incumbent inside a Nicol solve.
    NicolIncumbent,
    /// Candidate-walk bisection phase of a Nicol solve (the probes).
    NicolBisect,
    /// Final cut-reconstruction probe of a Nicol solve.
    NicolReconstruct,
    /// One parametric-bisection optimal 1-D solve.
    ParametricSolve,
    /// One Manne–Olstad dynamic-programming sweep (`dp_optimal`).
    DpSweep,
    /// One per-stripe bottleneck solve performed on a stripe-cache miss.
    StripeSolve,
    /// One `JAG-M-OPT` feasibility probe (one budget tried).
    JagMFeasibility,
    /// One `RECT-NICOL` refinement sweep.
    RectNicolRefine,
    /// One hierarchical bipartition node; `arg` = recursion depth, so
    /// span depth tracks tree depth.
    HierLevel,
    /// One `HIER-OPT` exact solve (the memoized DP as a whole).
    HierOptSolve,
    /// One `SolverDriver` fallback rung; `arg` = rung index.
    DriverRung,
    /// Wall-only: a worker thread's busy interval. Never enters the
    /// canonical tree (scheduling-dependent); Chrome-trace export only.
    WorkerBusy,
    /// Wall-only: a forking thread blocked joining its workers.
    JoinWait,
    /// One progress snapshot offered to the checkpoint sink by the
    /// solver driver (whether or not the sink persisted it).
    DriverSnapshot,
    /// Warm-start setup of `SolverDriver::resume_from` (snapshot
    /// validation + Γ rebuild, before the first resumed rung).
    DriverResume,
}

/// Number of [`SpanKind`] variants.
pub const SPAN_KIND_COUNT: usize = 21;

impl SpanKind {
    /// All kinds, in stable order (index = discriminant).
    pub const ALL: [SpanKind; SPAN_KIND_COUNT] = [
        SpanKind::CliIo,
        SpanKind::CliPartition,
        SpanKind::CliValidate,
        SpanKind::GammaDense,
        SpanKind::GammaSparse,
        SpanKind::NicolSolve,
        SpanKind::NicolIncumbent,
        SpanKind::NicolBisect,
        SpanKind::NicolReconstruct,
        SpanKind::ParametricSolve,
        SpanKind::DpSweep,
        SpanKind::StripeSolve,
        SpanKind::JagMFeasibility,
        SpanKind::RectNicolRefine,
        SpanKind::HierLevel,
        SpanKind::HierOptSolve,
        SpanKind::DriverRung,
        SpanKind::WorkerBusy,
        SpanKind::JoinWait,
        SpanKind::DriverSnapshot,
        SpanKind::DriverResume,
    ];

    /// Dotted `layer.name` identifier used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::CliIo => "cli.io",
            SpanKind::CliPartition => "cli.partition",
            SpanKind::CliValidate => "cli.validate",
            SpanKind::GammaDense => "gamma.dense_build",
            SpanKind::GammaSparse => "gamma.sparse_build",
            SpanKind::NicolSolve => "onedim.nicol",
            SpanKind::NicolIncumbent => "onedim.nicol.incumbent",
            SpanKind::NicolBisect => "onedim.nicol.bisect",
            SpanKind::NicolReconstruct => "onedim.nicol.reconstruct",
            SpanKind::ParametricSolve => "onedim.parametric",
            SpanKind::DpSweep => "onedim.dp_sweep",
            SpanKind::StripeSolve => "core.stripe_solve",
            SpanKind::JagMFeasibility => "core.jag_m.feasibility",
            SpanKind::RectNicolRefine => "core.rect_nicol.refine",
            SpanKind::HierLevel => "core.hier.level",
            SpanKind::HierOptSolve => "core.hier_opt.solve",
            SpanKind::DriverRung => "driver.rung",
            SpanKind::WorkerBusy => "parallel.worker_busy",
            SpanKind::JoinWait => "parallel.join_wait",
            SpanKind::DriverSnapshot => "driver.snapshot",
            SpanKind::DriverResume => "driver.resume",
        }
    }

    /// Wall-only kinds carry no deterministic work and are excluded
    /// from the canonical tree.
    pub const fn wall_only(self) -> bool {
        matches!(self, SpanKind::WorkerBusy | SpanKind::JoinWait)
    }
}

/// One node of the canonical (merged) span tree snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanNode {
    /// Path from the root: `(kind name, arg)` per level.
    pub path: Vec<(&'static str, u32)>,
    /// Completed spans merged into this node (fragments excluded).
    pub count: u64,
    /// Self work units charged while a span of this path was innermost.
    pub work: u64,
    /// Total inclusive wall nanoseconds over all merged spans.
    /// Scheduling-dependent: **not** part of the deterministic view.
    pub wall_ns: u64,
}

impl SpanNode {
    /// Stable `a;b#2;c` rendering of the path (the `#arg` suffix is
    /// appended only for nonzero args). The empty path renders as
    /// `(root)` — charges made outside any span.
    pub fn path_string(&self) -> String {
        if self.path.is_empty() {
            return "(root)".to_string();
        }
        let mut out = String::new();
        for (i, &(name, arg)) in self.path.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(name);
            if arg != 0 {
                out.push('#');
                out.push_str(&arg.to_string());
            }
        }
        out
    }
}

/// One raw span event retained for the Chrome-trace export. Event
/// retention is capped ([`EVENT_CAP`]); the canonical tree is exact
/// regardless.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What the span was.
    pub kind: SpanKind,
    /// Kind argument (depth / rung index), 0 when unused.
    pub arg: u32,
    /// Small per-thread integer id (assignment order is arbitrary).
    pub tid: u32,
    /// Nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Self work units of this individual span.
    pub work: u64,
}

/// Maximum retained raw events; past it, events are counted as dropped
/// rather than stored (~131k events ≈ a few MB).
pub const EVENT_CAP: usize = 1 << 17;

#[cfg(feature = "obs")]
mod imp {
    use super::EVENT_CAP;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
    use std::time::Instant;

    /// Path key in the merged tree: `(kind discriminant, arg)` per level.
    pub type Path = Vec<(u16, u32)>;

    /// Per-path aggregate.
    #[derive(Default)]
    pub struct Agg {
        pub count: u64,
        pub work: u64,
        pub wall_ns: u64,
    }

    /// Raw event as stored globally.
    #[derive(Clone)]
    pub struct RawEvent {
        pub kind: u16,
        pub arg: u32,
        pub tid: u32,
        pub start_ns: u64,
        pub dur_ns: u64,
        pub work: u64,
    }

    pub static TREE: Mutex<BTreeMap<Path, Agg>> = Mutex::new(BTreeMap::new());
    pub static EVENTS: Mutex<Vec<RawEvent>> = Mutex::new(Vec::new());
    pub static DROPPED: AtomicU64 = AtomicU64::new(0);
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    /// Nanoseconds since the process-wide trace epoch (first use).
    pub fn now_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Poison-tolerant lock: both tables only ever receive additive
    /// merges, so state abandoned mid-panic is still valid.
    pub fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// One open frame on a thread's span stack.
    pub struct Frame {
        pub kind: u16,
        pub arg: u32,
        pub start_ns: u64,
        pub self_work: u64,
    }

    /// A finished record awaiting its batched merge into the globals.
    pub struct Pending {
        pub path: Path,
        /// 1 for a real span, 0 for a worker fragment.
        pub count: u64,
        pub work: u64,
        pub wall_ns: u64,
        /// `(start_ns, dur_ns)` for real spans; fragments carry none.
        pub event: Option<(u64, u64)>,
    }

    /// Flush the pending buffer once it reaches this length.
    const FLUSH_EVERY: usize = 64;

    /// Per-thread span state. The `Drop` impl flushes what is left when
    /// the thread exits — scoped workers exit before their fork-join
    /// operation returns, so their records are merged before any serial
    /// checkpoint can snapshot.
    pub struct ThreadCtx {
        pub tid: u32,
        /// Virtual prefix installed by `adopt` (the forking thread's
        /// path at spawn time).
        pub adopted: Path,
        /// Work charged while no local frame is open; flushed as a
        /// fragment against `adopted`.
        pub adopted_work: u64,
        pub frames: Vec<Frame>,
        pub pending: Vec<Pending>,
    }

    impl ThreadCtx {
        fn new() -> ThreadCtx {
            ThreadCtx {
                tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                adopted: Vec::new(),
                adopted_work: 0,
                frames: Vec::new(),
                pending: Vec::new(),
            }
        }

        /// Full current path: adopted prefix plus open frames.
        pub fn current_path(&self) -> Path {
            let mut path = self.adopted.clone();
            path.extend(self.frames.iter().map(|f| (f.kind, f.arg)));
            path
        }

        /// Queue the outside-any-frame work accumulated so far as a
        /// fragment record against the adopted prefix.
        pub fn stash_adopted_work(&mut self) {
            if self.adopted_work > 0 {
                let work = std::mem::take(&mut self.adopted_work);
                self.pending.push(Pending {
                    path: self.adopted.clone(),
                    count: 0,
                    work,
                    wall_ns: 0,
                    event: None,
                });
            }
        }

        pub fn maybe_flush(&mut self) {
            if self.pending.len() >= FLUSH_EVERY {
                self.flush();
            }
        }

        /// Merge all pending records into the global tree and event
        /// buffer (one lock acquisition each).
        pub fn flush(&mut self) {
            if self.pending.is_empty() {
                return;
            }
            let records = std::mem::take(&mut self.pending);
            {
                let mut tree = lock(&TREE);
                for r in &records {
                    let agg = tree.entry(r.path.clone()).or_default();
                    agg.count += r.count;
                    agg.work += r.work;
                    agg.wall_ns += r.wall_ns;
                }
            }
            let mut events = lock(&EVENTS);
            for r in records {
                let Some((start_ns, dur_ns)) = r.event else {
                    continue;
                };
                if events.len() >= EVENT_CAP {
                    DROPPED.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let Some(&(kind, arg)) = r.path.last() else {
                    continue;
                };
                events.push(RawEvent {
                    kind,
                    arg,
                    tid: self.tid,
                    start_ns,
                    dur_ns,
                    work: r.work,
                });
            }
        }
    }

    impl Drop for ThreadCtx {
        fn drop(&mut self) {
            self.stash_adopted_work();
            self.flush();
        }
    }

    thread_local! {
        pub static CTX: RefCell<ThreadCtx> = RefCell::new(ThreadCtx::new());
    }

    /// Run `f` on this thread's span context. Silently a no-op during
    /// thread teardown or (impossible by construction) re-entrancy —
    /// the instrumentation layer must never panic (lint L1).
    pub fn with_ctx(f: impl FnOnce(&mut ThreadCtx)) {
        let _ = CTX.try_with(|cell| {
            if let Ok(mut ctx) = cell.try_borrow_mut() {
                f(&mut ctx);
            }
        });
    }
}

/// Drop-guard for one open span; created by [`enter`] / [`enter_arg`].
/// Guards are strictly scoped (LIFO per thread). Zero-sized with the
/// feature off.
#[must_use = "the span is open until the guard drops"]
pub struct SpanGuard {
    #[cfg(feature = "obs")]
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Open a span of `kind` (argument 0) until the guard drops.
#[inline(always)]
pub fn enter(kind: SpanKind) -> SpanGuard {
    enter_arg(kind, 0)
}

/// Open a span of `kind` with an explicit argument (recursion depth,
/// rung index) until the guard drops.
#[inline(always)]
pub fn enter_arg(kind: SpanKind, arg: u32) -> SpanGuard {
    #[cfg(feature = "obs")]
    {
        imp::with_ctx(|ctx| {
            ctx.frames.push(imp::Frame {
                kind: kind as u16,
                arg,
                start_ns: imp::now_ns(),
                self_work: 0,
            });
        });
        SpanGuard {
            _not_send: std::marker::PhantomData,
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = (kind, arg);
        SpanGuard {}
    }
}

#[cfg(feature = "obs")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let end = imp::now_ns();
        imp::with_ctx(|ctx| {
            let Some(frame) = ctx.frames.pop() else {
                return;
            };
            let path = {
                let mut p = ctx.current_path();
                p.push((frame.kind, frame.arg));
                p
            };
            let wall_ns = end.saturating_sub(frame.start_ns);
            let wall_only = SpanKind::ALL[frame.kind as usize].wall_only();
            ctx.pending.push(imp::Pending {
                path,
                count: u64::from(!wall_only),
                work: frame.self_work,
                wall_ns,
                event: Some((frame.start_ns, wall_ns)),
            });
            ctx.maybe_flush();
        });
    }
}

/// Attribute `n` work units to the innermost open span on this thread
/// (or to the adopted prefix / root when none is open). Called by
/// [`crate::work::charge`]; not part of the public API surface.
#[inline(always)]
pub(crate) fn attribute(n: u64) {
    #[cfg(feature = "obs")]
    if n > 0 {
        imp::with_ctx(|ctx| match ctx.frames.last_mut() {
            Some(frame) => frame.self_work += n,
            None => ctx.adopted_work += n,
        });
    }
    #[cfg(not(feature = "obs"))]
    let _ = n;
}

/// A captured span path, taken on a forking thread with
/// [`fork_context`] and installed on workers with [`adopt`]. Cloneable
/// and shareable across the spawned closures. Zero-sized with the
/// feature off.
#[derive(Clone, Debug, Default)]
pub struct ForkCtx {
    #[cfg(feature = "obs")]
    path: Vec<(u16, u32)>,
}

/// Capture the calling thread's current span path for worker adoption.
#[inline(always)]
pub fn fork_context() -> ForkCtx {
    #[cfg(feature = "obs")]
    {
        let mut path = Vec::new();
        imp::with_ctx(|ctx| path = ctx.current_path());
        ForkCtx { path }
    }
    #[cfg(not(feature = "obs"))]
    ForkCtx {}
}

/// Drop-guard restoring the previous adoption state; see [`adopt`].
#[must_use = "the adopted span context is installed until the guard drops"]
pub struct AdoptGuard {
    #[cfg(feature = "obs")]
    prev_adopted: Vec<(u16, u32)>,
    #[cfg(feature = "obs")]
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Install `ctx` as this thread's virtual span prefix: spans opened
/// here record paths as if they were nested under the forking thread's
/// open frames, and bare work charges are flushed as fragments against
/// the prefix when the guard drops. This is the **only** span API the
/// parallel execution layer may use (lint L3 rejects holding
/// [`SpanGuard`]s across its join boundaries).
#[inline(always)]
pub fn adopt(ctx: &ForkCtx) -> AdoptGuard {
    #[cfg(feature = "obs")]
    {
        let mut prev_adopted = Vec::new();
        imp::with_ctx(|tctx| {
            // Any work accumulated against the previous prefix belongs
            // to it, not to the new one.
            tctx.stash_adopted_work();
            prev_adopted = std::mem::replace(&mut tctx.adopted, ctx.path.clone());
        });
        AdoptGuard {
            prev_adopted,
            _not_send: std::marker::PhantomData,
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = ctx;
        AdoptGuard {}
    }
}

#[cfg(feature = "obs")]
impl Drop for AdoptGuard {
    fn drop(&mut self) {
        imp::with_ctx(|ctx| {
            ctx.stash_adopted_work();
            ctx.adopted = std::mem::take(&mut self.prev_adopted);
            ctx.flush();
        });
    }
}

/// Record a wall-only scheduler interval (worker busy / join wait) that
/// started at `start_ns` and lasted `dur_ns`. Feeds the Chrome-trace
/// event buffer only, never the canonical tree.
#[cfg(feature = "obs")]
#[inline(always)]
pub(crate) fn sched_event(kind: SpanKind, start_ns: u64, dur_ns: u64) {
    use std::sync::atomic::Ordering;
    imp::with_ctx(|ctx| {
        let mut events = imp::lock(&imp::EVENTS);
        if events.len() >= EVENT_CAP {
            imp::DROPPED.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(imp::RawEvent {
                kind: kind as u16,
                arg: 0,
                tid: ctx.tid,
                start_ns,
                dur_ns,
                work: 0,
            });
        }
    });
}

/// Nanoseconds since the trace epoch. Used by [`crate::StopWatch`] to
/// timestamp scheduler intervals.
#[cfg(feature = "obs")]
#[inline(always)]
pub(crate) fn epoch_ns() -> u64 {
    imp::now_ns()
}

/// Flush the calling thread's buffered records into the global tables.
/// [`crate::Recorder::snapshot`] calls this; exited worker threads have
/// already flushed via their TLS destructor.
pub fn flush_current_thread() {
    #[cfg(feature = "obs")]
    imp::with_ctx(|ctx| {
        ctx.stash_adopted_work();
        ctx.flush();
    });
}

/// Clear the merged tree, the event buffer, the drop counter, and the
/// calling thread's pending records. Like [`crate::work::reset`], only
/// meaningful at serial checkpoints (no parallel region still
/// recording).
pub fn reset() {
    #[cfg(feature = "obs")]
    {
        use std::sync::atomic::Ordering;
        imp::with_ctx(|ctx| {
            ctx.pending.clear();
            ctx.adopted_work = 0;
            for frame in &mut ctx.frames {
                // Frames still open keep their identity but restart
                // their tallies, mirroring the counter reset.
                frame.self_work = 0;
                frame.start_ns = imp::now_ns();
            }
        });
        imp::lock(&imp::TREE).clear();
        imp::lock(&imp::EVENTS).clear();
        imp::DROPPED.store(0, Ordering::Relaxed);
    }
}

/// Snapshot the canonical merged span tree, sorted by path. Counts and
/// work are covered by the determinism contract; `wall_ns` is not.
pub fn snapshot_tree() -> Vec<SpanNode> {
    #[cfg(feature = "obs")]
    {
        flush_current_thread();
        imp::lock(&imp::TREE)
            .iter()
            .map(|(path, agg)| SpanNode {
                path: path
                    .iter()
                    .map(|&(kind, arg)| (SpanKind::ALL[kind as usize].name(), arg))
                    .collect(),
                count: agg.count,
                work: agg.work,
                wall_ns: agg.wall_ns,
            })
            .collect()
    }
    #[cfg(not(feature = "obs"))]
    Vec::new()
}

/// Snapshot the retained raw events (for the Chrome exporter) plus the
/// number of events dropped past [`EVENT_CAP`].
pub fn snapshot_events() -> (Vec<SpanEvent>, u64) {
    #[cfg(feature = "obs")]
    {
        use std::sync::atomic::Ordering;
        flush_current_thread();
        let events = imp::lock(&imp::EVENTS)
            .iter()
            .map(|e| SpanEvent {
                kind: SpanKind::ALL[e.kind as usize],
                arg: e.arg,
                tid: e.tid,
                start_ns: e.start_ns,
                dur_ns: e.dur_ns,
                work: e.work,
            })
            .collect();
        (events, imp::DROPPED.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "obs"))]
    (Vec::new(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_are_distinct_and_indexed() {
        let mut names: Vec<&str> = SpanKind::ALL.iter().map(|k| k.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate span kind name");
        for (i, k) in SpanKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i, "ALL order must match discriminants");
        }
    }

    #[test]
    fn path_string_formats_args() {
        let node = SpanNode {
            path: vec![("cli.partition", 0), ("core.hier.level", 2)],
            count: 1,
            work: 5,
            wall_ns: 9,
        };
        assert_eq!(node.path_string(), "cli.partition;core.hier.level#2");
        let root = SpanNode {
            path: vec![],
            count: 0,
            work: 3,
            wall_ns: 0,
        };
        assert_eq!(root.path_string(), "(root)");
    }
}
