#![forbid(unsafe_code)]
//! Zero-cost instrumentation for the rectpart workspace.
//!
//! The crate exposes a small recording API — work [`Counter`]s, execution
//! [`ExecStat`]s, [`Phase`] timers, per-shard cache occupancy, and
//! convergence [`TraceId`] series — behind a [`Recorder`] handle. All state
//! lives in process-wide statics so instrumented crates never thread a
//! context object through their hot paths.
//!
//! # Zero overhead when disabled
//!
//! With the default-off `obs` feature disabled every recording function is
//! an empty `#[inline(always)]` body and [`Recorder`], [`PhaseGuard`] and
//! [`StopWatch`] are zero-sized, so call sites compile to nothing. This is
//! pinned by size assertions in this crate's tests rather than by assembly
//! inspection.
//!
//! # Determinism contract
//!
//! [`Counter`] values, stripe-cache shard inserts, and trace series are
//! *work* quantities: they must be bit-identical for a given input at any
//! thread count. Quantities whose magnitude legitimately depends on the
//! thread budget or on wall time (task spawn counts, busy/wait/phase
//! nanoseconds) are segregated into [`ExecStat`] and [`Phase`] storage and
//! are exempt from the differential test in
//! `crates/core/tests/obs_differential.rs`. Instrumented call sites uphold
//! the contract by only counting events whose multiplicity is decided by
//! the algorithm (e.g. cache *misses* are first-inserts of a distinct key,
//! never the outcome of a racy lookup), and trace snapshots are sorted by
//! `(series, step, value)` so concurrent appenders cannot perturb order.

#![warn(missing_docs)]

pub mod cancel;
pub mod chrome;
#[cfg(feature = "faultinject")]
pub mod fault;
pub mod flame;
mod report;
pub mod span;
pub mod work;

pub use report::{DeterministicView, Report};

/// Deterministic work counters. Values must be identical at any thread
/// count for the same input; see the crate docs for the contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// `nicol()` / `nicol_bounded()` invocations (one per 1-D partitioning).
    NicolCalls,
    /// Inner bisection steps of Nicol's parametric search (per cut point).
    NicolSearchSteps,
    /// Probe sweeps (`probe` / `probe_suffix_feasible`) over the prefix array.
    ProbeCalls,
    /// Dynamic-programming cell evaluations in `dp_optimal`.
    DpCells,
    /// Outer bisection iterations of `parametric_optimal`.
    ParametricSteps,
    /// `StripeCache::bottleneck` queries.
    StripeCacheLookups,
    /// `StripeCache` first-inserts (distinct keys actually solved).
    StripeCacheMisses,
    /// `StripeCache` evictions. Always 0 today (the cache is unbounded);
    /// kept so the stats schema is stable when a bounded policy lands.
    StripeCacheEvictions,
    /// `JAG-M-OPT` feasibility probes (one per budget tried).
    JagMFeasibilityChecks,
    /// `JAG-M-OPT` lazy stripe evaluations actually performed.
    JagMLazyEvals,
    /// `JAG-M-OPT` stripe evaluations skipped by monotonicity pruning.
    JagMLazySkips,
    /// `RECT-NICOL` refinement iterations executed.
    RectNicolRefineIters,
    /// Hierarchical (`HIER-RB`/`HIER-RELAXED`) bipartition nodes visited.
    HierBisections,
    /// `HIER-OPT` distinct memo states inserted (first-inserts only:
    /// racing duplicate solves of the same state are not counted).
    HierOptMemoStates,
    /// `PrefixSum2D` (Γ) constructions.
    GammaBuilds,
    /// Column-tile sweeps of the blocked dense Γ construction. Charged as
    /// `rows · ⌈cols/TILE⌉` per dense build — a pure function of the
    /// matrix shape, so the serial and parallel paths (which tile their
    /// row-prefix pass identically) report the same value at any thread
    /// count. Sparse builds charge 0 (they are not tiled).
    GammaTileSweeps,
    /// Nonzero runs stored by a `SparsePrefixSum` build — a pure function
    /// of the input matrix (one per maximal run of consecutive nonzero
    /// cells in a row). Dense builds charge 0.
    SparseGammaRuns,
    /// `SolveScratch` buffer checkouts that had to allocate (or grow) the
    /// backing storage. Counted only at serial, algorithm-determined
    /// checkout sites (same determinism level as `NicolCalls`).
    ScratchAllocs,
    /// `SolveScratch` buffer checkouts served entirely from already-owned
    /// capacity — the per-call `Vec` churn the scratch arena removed.
    ScratchReuses,
    /// Progress snapshots persisted by a checkpoint sink (one per file
    /// actually written, not per driver checkpoint offered).
    SnapshotWrites,
    /// Solves warm-started from a verified snapshot
    /// (`SolverDriver::resume_from` entries that passed validation).
    ResumeHits,
    /// Deterministic retry backoffs charged by the driver's rung retry
    /// loop (one per re-attempt after a contained rung panic).
    RetryBackoffs,
    /// Queries answered by a resident `Engine` (solve requests only;
    /// delta updates are not queries).
    EngineQueries,
    /// Engine queries served from the per-`(algorithm, m, region)`
    /// solution cache without re-solving (including stale partitions
    /// deliberately reused under a drift-threshold rebalance policy).
    EngineWarmHits,
    /// Matrix rows applied through `Engine::apply_delta` (counted
    /// whether the Γ table was patched row-incrementally or rebuilt —
    /// the engine picks whichever the work model says is cheaper).
    DeltaRowsPatched,
    /// `JAG-M-OPT` bisection probes avoided by warm-start seeding: the
    /// bit-length shrink of the `[lb, ub]` search range bought by a
    /// verified incumbent, net of the one verification probe spent.
    /// A pure function of the bounds, so identical at any thread count.
    WarmStartProbesSkipped,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 26;

impl Counter {
    /// All counters, in stable report order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::NicolCalls,
        Counter::NicolSearchSteps,
        Counter::ProbeCalls,
        Counter::DpCells,
        Counter::ParametricSteps,
        Counter::StripeCacheLookups,
        Counter::StripeCacheMisses,
        Counter::StripeCacheEvictions,
        Counter::JagMFeasibilityChecks,
        Counter::JagMLazyEvals,
        Counter::JagMLazySkips,
        Counter::RectNicolRefineIters,
        Counter::HierBisections,
        Counter::HierOptMemoStates,
        Counter::GammaBuilds,
        Counter::GammaTileSweeps,
        Counter::SparseGammaRuns,
        Counter::ScratchAllocs,
        Counter::ScratchReuses,
        Counter::SnapshotWrites,
        Counter::ResumeHits,
        Counter::RetryBackoffs,
        Counter::EngineQueries,
        Counter::EngineWarmHits,
        Counter::DeltaRowsPatched,
        Counter::WarmStartProbesSkipped,
    ];

    /// Dotted `layer.name` identifier used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::NicolCalls => "onedim.nicol_calls",
            Counter::NicolSearchSteps => "onedim.nicol_search_steps",
            Counter::ProbeCalls => "onedim.probe_calls",
            Counter::DpCells => "onedim.dp_cells",
            Counter::ParametricSteps => "onedim.parametric_steps",
            Counter::StripeCacheLookups => "core.stripe_cache.lookups",
            Counter::StripeCacheMisses => "core.stripe_cache.misses",
            Counter::StripeCacheEvictions => "core.stripe_cache.evictions",
            Counter::JagMFeasibilityChecks => "core.jag_m.feasibility_checks",
            Counter::JagMLazyEvals => "core.jag_m.lazy_evals",
            Counter::JagMLazySkips => "core.jag_m.lazy_skips",
            Counter::RectNicolRefineIters => "core.rect_nicol.refine_iters",
            Counter::HierBisections => "core.hier.bisections",
            Counter::HierOptMemoStates => "core.hier_opt.memo_states",
            Counter::GammaBuilds => "core.gamma_builds",
            Counter::GammaTileSweeps => "core.gamma.tile_sweeps",
            Counter::SparseGammaRuns => "core.gamma.sparse_runs",
            Counter::ScratchAllocs => "onedim.scratch.allocs",
            Counter::ScratchReuses => "onedim.scratch.reuses",
            Counter::SnapshotWrites => "resume.snapshot_writes",
            Counter::ResumeHits => "resume.resume_hits",
            Counter::RetryBackoffs => "robust.retry_backoffs",
            Counter::EngineQueries => "engine.queries",
            Counter::EngineWarmHits => "engine.warm_hits",
            Counter::DeltaRowsPatched => "engine.delta_rows_patched",
            Counter::WarmStartProbesSkipped => "engine.warm_start_probes_skipped",
        }
    }
}

/// Execution statistics whose values legitimately depend on the thread
/// budget or scheduling; excluded from the determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ExecStat {
    /// Fork-join data-parallel operations entered (`map_range` and friends).
    ParallelOps,
    /// `join()` invocations (including ones that ran inline).
    Joins,
    /// Worker threads actually spawned.
    TasksSpawned,
    /// Total nanoseconds workers spent inside their closures.
    WorkerBusyNs,
    /// Total nanoseconds the forking thread spent blocked joining workers.
    JoinWaitNs,
    /// Worker panics caught by the panic-isolation boundary. Zero at one
    /// thread (inline execution never unwinds through the boundary), so
    /// this is an exec stat, not a deterministic counter.
    WorkerPanicsCaught,
    /// Units re-executed sequentially after a caught worker panic.
    PanicRetries,
    /// Overflow-guarded accumulation steps performed while building Γ
    /// (the before/after metric of the blocked construction: the
    /// reference build charges two per cell, the blocked build only its
    /// hoisted per-tile boundary checks). An exec stat, not a
    /// [`Counter`]: the serial and parallel constructions perform
    /// different numbers of checks for the same input, and which one runs
    /// is decided by the thread budget.
    GammaCheckedOps,
}

/// Number of [`ExecStat`] variants.
pub const EXEC_STAT_COUNT: usize = 8;

impl ExecStat {
    /// All execution stats, in stable report order.
    pub const ALL: [ExecStat; EXEC_STAT_COUNT] = [
        ExecStat::ParallelOps,
        ExecStat::Joins,
        ExecStat::TasksSpawned,
        ExecStat::WorkerBusyNs,
        ExecStat::JoinWaitNs,
        ExecStat::WorkerPanicsCaught,
        ExecStat::PanicRetries,
        ExecStat::GammaCheckedOps,
    ];

    /// Dotted identifier used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            ExecStat::ParallelOps => "parallel.parallel_ops",
            ExecStat::Joins => "parallel.joins",
            ExecStat::TasksSpawned => "parallel.tasks_spawned",
            ExecStat::WorkerBusyNs => "parallel.worker_busy_ns",
            ExecStat::JoinWaitNs => "parallel.join_wait_ns",
            ExecStat::WorkerPanicsCaught => "parallel.worker_panics_caught",
            ExecStat::PanicRetries => "parallel.panic_retries",
            ExecStat::GammaCheckedOps => "core.gamma.checked_ops",
        }
    }
}

/// Coarse pipeline phases timed by [`phase`] drop-guards.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Reading / parsing the input matrix.
    Io,
    /// Building the 2-D prefix-sum array Γ.
    Gamma,
    /// Running the partitioning algorithm proper.
    Partition,
    /// Validating the produced partition.
    Validate,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 4;

impl Phase {
    /// All phases, in stable report order.
    pub const ALL: [Phase; PHASE_COUNT] =
        [Phase::Io, Phase::Gamma, Phase::Partition, Phase::Validate];

    /// Identifier used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            Phase::Io => "io",
            Phase::Gamma => "gamma",
            Phase::Partition => "partition",
            Phase::Validate => "validate",
        }
    }
}

/// Named convergence-trace series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum TraceId {
    /// `RECT-NICOL` per-refinement-iteration `Lmax` (series = 0,
    /// step = iteration, value = Lmax).
    RectNicolLmax,
    /// `JAG-M-OPT` budget binary search (series = axis, step = probe
    /// index, value = budget tried).
    JagMOptBudget,
}

/// Number of [`TraceId`] variants.
pub const TRACE_COUNT: usize = 2;

impl TraceId {
    /// All trace ids, in stable report order.
    pub const ALL: [TraceId; TRACE_COUNT] = [TraceId::RectNicolLmax, TraceId::JagMOptBudget];

    /// Identifier used as the JSON key.
    pub const fn name(self) -> &'static str {
        match self {
            TraceId::RectNicolLmax => "rect_nicol_lmax",
            TraceId::JagMOptBudget => "jag_m_opt_budget",
        }
    }
}

/// Upper bound on cache shards tracked per-shard (the actual `ShardedMemo`
/// uses fewer; see `rectpart-core::cache`).
pub const MAX_SHARDS: usize = 64;

/// One point of a convergence trace: `(series, step, value)`.
pub type TracePoint = (u64, u64, u64);

#[cfg(feature = "obs")]
mod imp {
    use super::{TracePoint, COUNTER_COUNT, EXEC_STAT_COUNT, MAX_SHARDS, PHASE_COUNT, TRACE_COUNT};
    use std::sync::atomic::AtomicU64;
    use std::sync::Mutex;

    pub static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];
    pub static EXEC: [AtomicU64; EXEC_STAT_COUNT] = [const { AtomicU64::new(0) }; EXEC_STAT_COUNT];
    pub static PHASES: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
    pub static SHARD_INSERTS: [AtomicU64; MAX_SHARDS] = [const { AtomicU64::new(0) }; MAX_SHARDS];
    pub static TRACES: [Mutex<Vec<TracePoint>>; TRACE_COUNT] =
        [const { Mutex::new(Vec::new()) }; TRACE_COUNT];

    /// Locks one trace buffer, shrugging off poisoning: appends are the
    /// only writes, so a buffer abandoned mid-panic is still a valid
    /// (possibly truncated) point list worth reporting.
    pub fn lock_trace(id: usize) -> std::sync::MutexGuard<'static, Vec<TracePoint>> {
        // lint:allow(panic-reach) -- every caller passes `TraceId as usize`
        // (discriminants 0..TRACE_COUNT) or a loop index over 0..TRACE_COUNT
        TRACES[id]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Add `n` to a work counter. Free function so hot paths stay terse.
#[inline(always)]
pub fn add(counter: Counter, n: u64) {
    #[cfg(feature = "obs")]
    // lint:allow(panic-reach) -- COUNTERS is sized by COUNTER_COUNT, which
    // Counter::ALL pins to the number of enum variants; `as usize` < len
    imp::COUNTERS[counter as usize].fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = (counter, n);
}

/// Increment a work counter by one.
#[inline(always)]
pub fn incr(counter: Counter) {
    add(counter, 1);
}

/// Add `n` to an execution statistic.
#[inline(always)]
pub fn exec_add(stat: ExecStat, n: u64) {
    #[cfg(feature = "obs")]
    // lint:allow(panic-reach) -- EXEC is sized by EXEC_STAT_COUNT, pinned to
    // the ExecStat variant count by ExecStat::ALL; `as usize` < len
    imp::EXEC[stat as usize].fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = (stat, n);
}

/// Record a first-insert into cache shard `shard` (clamped to
/// [`MAX_SHARDS`]).
#[inline(always)]
pub fn record_shard_insert(shard: usize) {
    #[cfg(feature = "obs")]
    imp::SHARD_INSERTS[shard % MAX_SHARDS].fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = shard;
}

/// Append a point to a convergence trace. Points are sorted at snapshot
/// time, so concurrent appenders do not perturb the reported order.
#[inline(always)]
pub fn trace_point(id: TraceId, series: u64, step: u64, value: u64) {
    #[cfg(feature = "obs")]
    imp::lock_trace(id as usize).push((series, step, value));
    #[cfg(not(feature = "obs"))]
    let _ = (id, series, step, value);
}

/// Drop-guard returned by [`phase`]; adds the elapsed nanoseconds to the
/// phase's timer when dropped. Zero-sized with the feature off.
#[must_use = "the phase is timed until the guard drops"]
pub struct PhaseGuard {
    #[cfg(feature = "obs")]
    phase: Phase,
    #[cfg(feature = "obs")]
    start: std::time::Instant,
}

/// Start timing `phase` until the returned guard drops.
#[inline(always)]
pub fn phase(phase: Phase) -> PhaseGuard {
    #[cfg(feature = "obs")]
    {
        PhaseGuard {
            phase,
            start: std::time::Instant::now(),
        }
    }
    #[cfg(not(feature = "obs"))]
    {
        let _ = phase;
        PhaseGuard {}
    }
}

#[cfg(feature = "obs")]
impl Drop for PhaseGuard {
    fn drop(&mut self) {
        imp::PHASES[self.phase as usize].fetch_add(
            self.start.elapsed().as_nanos() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
    }
}

/// Manual stopwatch for attributing elapsed time to an [`ExecStat`]
/// (worker busy / join wait). Zero-sized with the feature off.
///
/// Stopping a [`ExecStat::WorkerBusyNs`] / [`ExecStat::JoinWaitNs`] watch
/// additionally emits a wall-only scheduler interval into the span event
/// buffer (for the Chrome-trace export), so the parallel execution layer
/// gets busy/wait lanes in traces without ever touching a clock or a span
/// guard itself.
#[must_use = "call stop() to record the elapsed time"]
pub struct StopWatch {
    #[cfg(feature = "obs")]
    start_ns: u64,
}

impl StopWatch {
    /// Start the stopwatch.
    #[inline(always)]
    pub fn start() -> Self {
        StopWatch {
            #[cfg(feature = "obs")]
            start_ns: span::epoch_ns(),
        }
    }

    /// Stop and add the elapsed nanoseconds to `stat`.
    #[inline(always)]
    pub fn stop(self, stat: ExecStat) {
        #[cfg(feature = "obs")]
        {
            let dur_ns = span::epoch_ns().saturating_sub(self.start_ns);
            exec_add(stat, dur_ns);
            let kind = match stat {
                ExecStat::WorkerBusyNs => Some(span::SpanKind::WorkerBusy),
                ExecStat::JoinWaitNs => Some(span::SpanKind::JoinWait),
                _ => None,
            };
            if let Some(kind) = kind {
                span::sched_event(kind, self.start_ns, dur_ns);
            }
        }
        #[cfg(not(feature = "obs"))]
        let _ = stat;
    }
}

/// Handle over the process-wide recorder. Zero-sized; exists so lifecycle
/// operations (`reset`, `snapshot`) read as methods rather than free
/// functions scattered at call sites.
#[derive(Clone, Copy, Default)]
pub struct Recorder(());

impl Recorder {
    /// The process-wide recorder.
    #[inline(always)]
    pub const fn global() -> Recorder {
        Recorder(())
    }

    /// Whether the `obs` feature is compiled in.
    #[inline(always)]
    pub const fn enabled(self) -> bool {
        cfg!(feature = "obs")
    }

    /// Zero all counters, stats, timers, shard tallies, traces, and span
    /// state.
    pub fn reset(self) {
        #[cfg(feature = "obs")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            for c in &imp::COUNTERS {
                c.store(0, Relaxed);
            }
            for c in &imp::EXEC {
                c.store(0, Relaxed);
            }
            for c in &imp::PHASES {
                c.store(0, Relaxed);
            }
            for c in &imp::SHARD_INSERTS {
                c.store(0, Relaxed);
            }
            for t in 0..imp::TRACES.len() {
                imp::lock_trace(t).clear();
            }
            span::reset();
        }
    }

    /// Snapshot the current state into a [`Report`]. With the feature off
    /// this returns [`Report::default`], for which
    /// [`Report::is_empty`] is `true`.
    pub fn snapshot(self) -> Report {
        #[cfg(feature = "obs")]
        {
            use std::sync::atomic::Ordering::Relaxed;
            let mut report = Report {
                enabled: true,
                ..Report::default()
            };
            for c in Counter::ALL {
                report
                    .counters
                    .push((c.name(), imp::COUNTERS[c as usize].load(Relaxed)));
            }
            for s in ExecStat::ALL {
                report
                    .exec
                    .push((s.name(), imp::EXEC[s as usize].load(Relaxed)));
            }
            for p in Phase::ALL {
                report
                    .phases_ns
                    .push((p.name(), imp::PHASES[p as usize].load(Relaxed)));
            }
            report.shard_inserts = imp::SHARD_INSERTS.iter().map(|c| c.load(Relaxed)).collect();
            while report.shard_inserts.last() == Some(&0) {
                report.shard_inserts.pop();
            }
            for t in TraceId::ALL {
                let mut points = imp::lock_trace(t as usize).clone();
                points.sort_unstable();
                report.traces.push((t.name(), points));
            }
            report.spans = span::snapshot_tree()
                .into_iter()
                .map(|node| (node.path_string(), node.count, node.work))
                .collect();
            report
        }
        #[cfg(not(feature = "obs"))]
        Report::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_handle_is_zero_sized() {
        assert_eq!(std::mem::size_of::<Recorder>(), 0);
    }

    #[test]
    fn names_are_distinct_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.extend(ExecStat::ALL.iter().map(|s| s.name()));
        names.extend(Phase::ALL.iter().map(|p| p.name()));
        names.extend(TraceId::ALL.iter().map(|t| t.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate observable name");
    }

    #[cfg(not(feature = "obs"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn guards_are_zero_sized() {
            assert_eq!(std::mem::size_of::<PhaseGuard>(), 0);
            assert_eq!(std::mem::size_of::<StopWatch>(), 0);
            assert_eq!(std::mem::size_of::<span::SpanGuard>(), 0);
            assert_eq!(std::mem::size_of::<span::ForkCtx>(), 0);
            assert_eq!(std::mem::size_of::<span::AdoptGuard>(), 0);
        }

        #[test]
        fn disabled_recorder_emits_empty_report() {
            // Recording calls are accepted but compile to nothing…
            incr(Counter::NicolCalls);
            add(Counter::DpCells, 42);
            exec_add(ExecStat::Joins, 7);
            record_shard_insert(3);
            trace_point(TraceId::RectNicolLmax, 0, 0, 100);
            let _guard = phase(Phase::Partition);
            StopWatch::start().stop(ExecStat::WorkerBusyNs);
            {
                let _span = span::enter(span::SpanKind::CliPartition);
                let _adopt = span::adopt(&span::fork_context());
            }
            // …and the snapshot stays empty.
            let report = Recorder::global().snapshot();
            assert!(!Recorder::global().enabled());
            assert!(report.is_empty());
            assert!(span::snapshot_tree().is_empty());
            assert_eq!(span::snapshot_events(), (Vec::new(), 0));
            assert_eq!(report.get("onedim.nicol_calls"), None);
        }
    }

    #[cfg(feature = "obs")]
    mod enabled {
        use super::super::*;

        // One test so nothing else in this binary races the global state.
        #[test]
        fn record_snapshot_reset_roundtrip() {
            let rec = Recorder::global();
            assert!(rec.enabled());
            rec.reset();

            incr(Counter::NicolCalls);
            add(Counter::DpCells, 42);
            exec_add(ExecStat::TasksSpawned, 3);
            record_shard_insert(2);
            record_shard_insert(2);
            // Out-of-order appends must come back sorted.
            trace_point(TraceId::RectNicolLmax, 0, 1, 90);
            trace_point(TraceId::RectNicolLmax, 0, 0, 100);
            {
                let _g = phase(Phase::Partition);
            }
            // Nested spans with directly-attributed self work (the work
            // meter itself is owned by the `work` module's test).
            {
                let _outer = span::enter(span::SpanKind::CliPartition);
                span::attribute(7);
                {
                    let _inner = span::enter_arg(span::SpanKind::HierLevel, 2);
                    span::attribute(3);
                }
            }

            let report = rec.snapshot();
            assert!(!report.is_empty());
            assert_eq!(report.get("onedim.nicol_calls"), Some(1));
            assert_eq!(report.get("onedim.dp_cells"), Some(42));
            assert_eq!(report.get("parallel.tasks_spawned"), Some(3));
            assert_eq!(report.shard_inserts, vec![0, 0, 2]);
            assert_eq!(
                report.traces[TraceId::RectNicolLmax as usize].1,
                vec![(0, 0, 100), (0, 1, 90)]
            );
            let json = rectpart_json::Json::to_string_pretty(&report.to_json());
            assert!(json.contains("\"onedim.dp_cells\": 42"));

            // Span tree: exact lookups per path (other tests in this
            // binary may flush root fragments concurrently, so no
            // whole-tree equality here).
            let span_get = |r: &Report, path: &str| {
                r.spans
                    .iter()
                    .find(|(p, _, _)| p == path)
                    .map(|&(_, count, work)| (count, work))
            };
            assert_eq!(span_get(&report, "cli.partition"), Some((1, 7)));
            assert_eq!(
                span_get(&report, "cli.partition;core.hier.level#2"),
                Some((1, 3))
            );
            assert!(json.contains("\"cli.partition;core.hier.level#2\""));
            // A stopped busy-watch lands in the event buffer as a
            // wall-only interval — never in the tree.
            StopWatch::start().stop(ExecStat::WorkerBusyNs);
            let (events, _dropped) = span::snapshot_events();
            assert!(events
                .iter()
                .any(|e| e.kind == span::SpanKind::WorkerBusy && e.work == 0));
            assert!(report
                .spans
                .iter()
                .all(|(path, _, _)| !path.contains("parallel.worker_busy")));

            rec.reset();
            let report = rec.snapshot();
            assert_eq!(report.get("onedim.nicol_calls"), Some(0));
            assert!(report.shard_inserts.is_empty());
            assert!(report.traces.iter().all(|(_, pts)| pts.is_empty()));
            assert_eq!(span_get(&report, "cli.partition"), None);
        }
    }
}
