//! Chrome trace-event JSON exporter for the span subsystem.
//!
//! Produces the "JSON Object Format" of the Trace Event spec — a
//! top-level object with a `traceEvents` array of complete (`ph: "X"`)
//! events — which loads directly in Perfetto (<https://ui.perfetto.dev>)
//! and `chrome://tracing`. Timestamps and durations are integer
//! microseconds since the process trace epoch, as the format requires;
//! exact nanosecond durations and deterministic work units ride along in
//! each event's `args`.
//!
//! Dependency-free by construction: the document is assembled as a
//! [`rectpart_json::Json`] value, so it round-trips through the
//! workspace's own parser.

use rectpart_json::Json;

use crate::span::{self, SpanEvent};

/// Build the Chrome trace document from an explicit event list (pure;
/// the [`trace_json`] wrapper feeds it the live buffer).
pub fn trace_json_from(events: &[SpanEvent], dropped: u64) -> Json {
    let trace_events = events
        .iter()
        .map(|e| {
            let mut args = vec![
                ("work", Json::UInt(e.work)),
                ("dur_ns", Json::UInt(e.dur_ns)),
            ];
            if e.arg != 0 {
                args.push(("arg", Json::UInt(u64::from(e.arg))));
            }
            let cat = if e.kind.wall_only() { "sched" } else { "span" };
            Json::obj(vec![
                ("name", Json::Str(e.kind.name().to_string())),
                ("cat", Json::Str(cat.to_string())),
                ("ph", Json::Str("X".to_string())),
                ("ts", Json::UInt(e.start_ns / 1_000)),
                ("dur", Json::UInt(e.dur_ns / 1_000)),
                ("pid", Json::UInt(1)),
                ("tid", Json::UInt(u64::from(e.tid))),
                ("args", Json::obj(args)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::Str("ms".to_string())),
        (
            "otherData",
            Json::obj(vec![
                ("format", Json::Str("rectpart-span-trace".to_string())),
                ("dropped_events", Json::UInt(dropped)),
            ]),
        ),
    ])
}

/// Export the retained span/scheduler events as a Chrome trace document.
/// With the `obs` feature off the document is valid but empty.
pub fn trace_json() -> Json {
    let (events, dropped) = span::snapshot_events();
    trace_json_from(&events, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;

    // Synthetic events only: the live buffer is process-global and owned
    // by the roundtrip test in `lib.rs`.
    #[test]
    fn document_shape_and_json_roundtrip() {
        let events = [
            SpanEvent {
                kind: SpanKind::NicolSolve,
                arg: 0,
                tid: 0,
                start_ns: 2_500,
                dur_ns: 4_999,
                work: 17,
            },
            SpanEvent {
                kind: SpanKind::WorkerBusy,
                arg: 3,
                tid: 2,
                start_ns: 1_000_000,
                dur_ns: 2_000_000,
                work: 0,
            },
        ];
        let doc = trace_json_from(&events, 5);
        let text = doc.to_string_pretty();
        let reparsed = rectpart_json::parse(&text).expect("exporter output must parse");
        assert_eq!(reparsed, doc, "document must round-trip via rectpart-json");
        assert!(text.contains("\"name\": \"onedim.nicol\""));
        assert!(text.contains("\"cat\": \"sched\""));
        assert!(text.contains("\"ph\": \"X\""));
        // 2_500 ns floor to 2 µs; exact nanoseconds preserved in args.
        assert!(text.contains("\"ts\": 2"));
        assert!(text.contains("\"dur_ns\": 4999"));
        assert!(text.contains("\"dropped_events\": 5"));
    }

    #[test]
    fn empty_trace_is_still_a_valid_document() {
        let doc = trace_json_from(&[], 0);
        let text = doc.to_string_pretty();
        assert!(rectpart_json::parse(&text).is_ok());
        assert!(text.contains("\"traceEvents\": []"));
    }
}
