//! Cooperative cancellation armed against the deterministic work meter.
//!
//! Like the [`work`](crate::work) meter this module is compiled
//! unconditionally: the solver driver and the checkpointed algorithm
//! loops poll it at their existing serial work-meter checkpoints, so it
//! must exist in every build. Cancellation is expressed as a *work-unit
//! deadline*, never a wall-clock one — a solve is cancelled when
//! [`crate::work::spent`] reaches the armed deadline, which keeps the
//! set of checkpoints that observe the cancellation a pure function of
//! the armed value and the algorithm's own charges.
//!
//! # Determinism
//!
//! A cancelled solve discards all partial work (the resume protocol
//! restarts the interrupted rung from its last snapshot), so the exact
//! checkpoint that first observes the deadline does not influence any
//! *completed* result. What matters — and holds — is that with the
//! deadline disarmed no checkpoint ever fires, and that an armed
//! deadline below the work a solve charges always fires at some
//! checkpoint.

use std::sync::atomic::{AtomicU64, Ordering};

/// Disarmed sentinel: no charge total ever reaches it by comparison
/// (`spent() >= u64::MAX` only after a full wrap, which the meter's
/// relaxed additions cannot produce within a process lifetime).
const DISARMED: u64 = u64::MAX;

static DEADLINE: AtomicU64 = AtomicU64::new(DISARMED);

/// Arm cancellation: checkpoints fire once [`crate::work::spent`]
/// reaches `deadline_work_units`. Passing `0` cancels at the very next
/// checkpoint.
pub fn arm_at(deadline_work_units: u64) {
    DEADLINE.store(deadline_work_units, Ordering::Relaxed);
}

/// Request immediate cancellation (the next checkpoint fires).
pub fn arm_now() {
    arm_at(0);
}

/// Disarm cancellation; checkpoints stop firing.
pub fn disarm() {
    DEADLINE.store(DISARMED, Ordering::Relaxed);
}

/// Whether a deadline is currently armed (fired or not).
pub fn armed() -> bool {
    DEADLINE.load(Ordering::Relaxed) != DISARMED
}

/// Whether cancellation has been requested: a deadline is armed and the
/// work meter has reached it. Cheap enough for per-iteration polling
/// (two relaxed atomic loads).
#[inline]
pub fn requested() -> bool {
    crate::work::spent() >= DEADLINE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test so nothing else in this binary races the global deadline
    // (the work meter itself is owned by the `work` module's test).
    #[test]
    fn arm_poll_disarm_roundtrip() {
        disarm();
        assert!(!armed());
        assert!(!requested());

        // A deadline far above anything charged never fires…
        arm_at(u64::MAX - 1);
        assert!(armed());
        assert!(!requested());

        // …an immediate one always does.
        arm_now();
        assert!(requested());

        disarm();
        assert!(!armed());
        assert!(!requested());
    }
}
