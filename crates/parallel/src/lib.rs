#![forbid(unsafe_code)]
//! Deterministic fork-join execution layer for rectpart.
//!
//! Every operation here has a serial fallback that produces the exact
//! output the parallel path produces — results are collected in index
//! order, reductions are folded left-to-right over per-chunk partials,
//! and `join` returns `(a, b)` positionally. Algorithms built on these
//! primitives are therefore **bit-identical** at any thread count; the
//! differential tests in `rectpart-core` enforce this.
//!
//! Scheduling model: scoped fork-join over `std::thread` (no persistent
//! pool, no work stealing). Each operation statically splits its index
//! range into one contiguous block per worker. That is cheap to reason
//! about and cheap to spawn at the coarse granularities the partitioners
//! need (whole rows of Γ, whole stripes of a cut vector); it does not
//! try to load-balance skewed per-item costs.
//!
//! Thread-count resolution, highest priority first:
//! 1. a scope installed by [`with_threads`] (inherited by nested `join`
//!    branches with a split budget, so recursion cannot oversubscribe);
//! 2. [`set_global_threads`] (0 restores auto);
//! 3. the `RECTPART_THREADS` environment variable;
//! 4. `std::thread::available_parallelism()`.
//!
//! With `--no-default-features` (the `threads` feature off) every
//! operation runs inline and no thread is ever spawned.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SCOPED_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores the previous scoped thread budget on drop (panic-safe).
struct ScopedGuard {
    prev: Option<usize>,
}

impl ScopedGuard {
    fn set(n: usize) -> ScopedGuard {
        let prev = SCOPED_THREADS.with(|c| c.replace(Some(n.max(1))));
        ScopedGuard { prev }
    }
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        SCOPED_THREADS.with(|c| c.set(self.prev));
    }
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RECTPART_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The number of worker threads parallel operations may use right now.
/// Always ≥ 1; exactly 1 when the `threads` feature is disabled.
pub fn current_threads() -> usize {
    if cfg!(not(feature = "threads")) {
        return 1;
    }
    if let Some(n) = SCOPED_THREADS.with(Cell::get) {
        return n.max(1);
    }
    let global = GLOBAL_THREADS.load(Ordering::Relaxed);
    if global > 0 {
        return global;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    // `available_parallelism` is a syscall; resolve it once. Operations
    // consult `current_threads` on every invocation, and the hot
    // partitioner paths invoke them at fine granularity.
    static DETECTED: OnceLock<usize> = OnceLock::new();
    *DETECTED.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Sets the process-wide default thread count. `0` restores automatic
/// detection. Scoped overrides via [`with_threads`] still win.
pub fn set_global_threads(n: usize) {
    GLOBAL_THREADS.store(n, Ordering::Relaxed);
}

/// Detected hardware parallelism of the host, ignoring every configured
/// or scoped budget. Provenance only (stats / bench emitters record it);
/// use [`current_threads`] for scheduling decisions. Lives here because
/// thread APIs outside `crates/parallel` are rejected by lint L2.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs `f` with the thread budget pinned to `n` (≥ 1) on this thread,
/// including inside nested [`join`] branches. Restores the previous
/// budget afterwards, also on panic.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let _guard = ScopedGuard::set(n);
    f()
}

/// Per-algorithm parallelism override, plumbed through partitioner
/// structs. `None` inherits the ambient configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParallelismConfig {
    pub threads: Option<usize>,
}

impl ParallelismConfig {
    /// Inherit the ambient thread budget (the default).
    pub fn inherit() -> Self {
        ParallelismConfig { threads: None }
    }

    /// Force serial execution.
    pub fn serial() -> Self {
        ParallelismConfig { threads: Some(1) }
    }

    /// Pin to exactly `n` threads.
    pub fn threads(n: usize) -> Self {
        ParallelismConfig {
            threads: Some(n.max(1)),
        }
    }

    /// Runs `f` under this configuration.
    pub fn run<R>(&self, f: impl FnOnce() -> R) -> R {
        match self.threads {
            Some(n) => with_threads(n, f),
            None => f(),
        }
    }
}

/// Runs both closures, in parallel when at least 2 threads are
/// available, and returns their results positionally. The thread budget
/// is split between the branches so recursive joins bottom out instead
/// of oversubscribing.
pub fn join<RA, RB>(a: impl FnOnce() -> RA + Send, b: impl FnOnce() -> RB + Send) -> (RA, RB)
where
    RA: Send,
    RB: Send,
{
    rectpart_obs::exec_add(rectpart_obs::ExecStat::Joins, 1);
    let threads = current_threads();
    if threads < 2 {
        return (a(), b());
    }
    #[cfg(feature = "threads")]
    {
        let b_budget = threads / 2;
        let a_budget = threads - b_budget;
        rectpart_obs::exec_add(rectpart_obs::ExecStat::TasksSpawned, 1);
        let span_ctx = rectpart_obs::span::fork_context();
        std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let _guard = ScopedGuard::set(b_budget);
                let _adopt = rectpart_obs::span::adopt(&span_ctx);
                let busy = rectpart_obs::StopWatch::start();
                let rb = b();
                busy.stop(rectpart_obs::ExecStat::WorkerBusyNs);
                rb
            });
            let ra = with_threads(a_budget, a);
            let wait = rectpart_obs::StopWatch::start();
            let rb = handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            wait.stop(rectpart_obs::ExecStat::JoinWaitNs);
            (ra, rb)
        })
    }
    #[cfg(not(feature = "threads"))]
    {
        (a(), b())
    }
}

/// Applies `f` to every index in `0..n` and collects the results in
/// index order. Workers get contiguous blocks; each worker's budget is
/// pinned to 1 so nested parallel calls inside `f` run inline.
///
/// # Panic isolation
///
/// `f` is a pure producer (`Fn(usize) -> R`, no shared mutable state),
/// so a panicking worker poisons only its own block: the panic is
/// contained at the join, counted as
/// [`WorkerPanicsCaught`](rectpart_obs::ExecStat::WorkerPanicsCaught),
/// and the block is recomputed sequentially on the calling thread (one
/// [`PanicRetries`](rectpart_obs::ExecStat::PanicRetries) per unit). A
/// *deterministic* panic of `f` therefore still surfaces — the retry
/// hits it on the calling thread — while scheduling-dependent faults
/// (e.g. injected worker panics) are fully recovered with bit-identical
/// output. The mutable-slice operations below do **not** retry: their
/// workers may have partially mutated their block, so re-running the
/// closure would double-apply; they propagate the panic instead.
pub fn map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    rectpart_obs::exec_add(rectpart_obs::ExecStat::ParallelOps, 1);
    let threads = current_threads();
    if threads < 2 || n < 2 {
        return (0..n).map(f).collect();
    }
    #[cfg(feature = "threads")]
    {
        let workers = threads.min(n);
        rectpart_obs::exec_add(rectpart_obs::ExecStat::TasksSpawned, workers as u64);
        let f = &f;
        let span_ctx = rectpart_obs::span::fork_context();
        let span_ctx = &span_ctx;
        let mut blocks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    // lint:allow(panic-reach) -- w ranges over 0..workers,
                    // so this body only runs when workers >= 1
                    let lo = w * n / workers;
                    // lint:allow(panic-reach) -- same: workers >= 1 here
                    let hi = (w + 1) * n / workers;
                    scope.spawn(move || {
                        #[cfg(feature = "faultinject")]
                        if rectpart_obs::fault::worker_should_panic() {
                            // The injected fault fires before any unit
                            // runs, so the sequential retry reproduces
                            // the block (and its work charges) exactly.
                            // lint:allow(panic) -- faultinject: deliberate injected worker panic, contained by the retry path at the join below
                            panic!("injected worker fault");
                        }
                        let _guard = ScopedGuard::set(1);
                        let _adopt = rectpart_obs::span::adopt(span_ctx);
                        let busy = rectpart_obs::StopWatch::start();
                        let block = (lo..hi).map(f).collect::<Vec<R>>();
                        busy.stop(rectpart_obs::ExecStat::WorkerBusyNs);
                        block
                    })
                })
                .collect();
            let wait = rectpart_obs::StopWatch::start();
            let blocks: Vec<Vec<R>> = handles
                .into_iter()
                .enumerate()
                .map(|(w, h)| match h.join() {
                    Ok(block) => block,
                    // A panicked worker computed nothing the caller will
                    // see; recompute its block inline. The payload is
                    // dropped — a deterministic panic recurs right here
                    // on the calling thread and propagates normally.
                    Err(_payload) => {
                        rectpart_obs::exec_add(rectpart_obs::ExecStat::WorkerPanicsCaught, 1);
                        // lint:allow(panic-reach) -- retry path for worker w
                        // in 0..workers, so workers >= 1
                        let lo = w * n / workers;
                        // lint:allow(panic-reach) -- same: workers >= 1 here
                        let hi = (w + 1) * n / workers;
                        rectpart_obs::exec_add(
                            rectpart_obs::ExecStat::PanicRetries,
                            (hi - lo) as u64,
                        );
                        (lo..hi).map(f).collect::<Vec<R>>()
                    }
                })
                .collect();
            wait.stop(rectpart_obs::ExecStat::JoinWaitNs);
            blocks
        });
        let mut out = Vec::with_capacity(n);
        for block in &mut blocks {
            out.append(block);
        }
        out
    }
    #[cfg(not(feature = "threads"))]
    {
        (0..n).map(f).collect()
    }
}

/// Slice version of [`map_range`], in element order.
pub fn map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    // lint:allow(panic-reach) -- map_range hands out i in 0..items.len()
    map_range(items.len(), |i| f(&items[i]))
}

/// Maps each element to an iterator and concatenates the results in
/// element order (`flat_map` with deterministic ordering).
pub fn flat_map_slice<T, R, I, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: IntoIterator<Item = R>,
    F: Fn(&T) -> I + Sync,
{
    let nested = map_range(items.len(), |i| {
        // lint:allow(panic-reach) -- map_range hands out i in 0..items.len()
        f(&items[i]).into_iter().collect::<Vec<R>>()
    });
    nested.into_iter().flatten().collect()
}

/// Applies `f(index, &mut item)` to every element, splitting the slice
/// into contiguous blocks across workers.
// Without `threads` the cfg block below vanishes and the serial path's
// early `return` becomes the tail statement.
#[cfg_attr(not(feature = "threads"), allow(clippy::needless_return))]
pub fn for_each_indexed_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    rectpart_obs::exec_add(rectpart_obs::ExecStat::ParallelOps, 1);
    let n = items.len();
    let threads = current_threads();
    if threads < 2 || n < 2 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    #[cfg(feature = "threads")]
    {
        let workers = threads.min(n);
        rectpart_obs::exec_add(rectpart_obs::ExecStat::TasksSpawned, workers as u64);
        let f = &f;
        let span_ctx = rectpart_obs::span::fork_context();
        let span_ctx = &span_ctx;
        std::thread::scope(|scope| {
            let mut rest = items;
            let mut offset = 0;
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                // lint:allow(panic-reach) -- loop over 0..workers: workers >= 1
                let hi = (w + 1) * n / workers;
                // lint:allow(panic-reach) -- the per-worker [offset, hi)
                // blocks partition 0..n, so hi - offset <= rest.len()
                let (block, tail) = rest.split_at_mut(hi - offset);
                rest = tail;
                let base = offset;
                offset = hi;
                handles.push(scope.spawn(move || {
                    let _guard = ScopedGuard::set(1);
                    let _adopt = rectpart_obs::span::adopt(span_ctx);
                    let busy = rectpart_obs::StopWatch::start();
                    for (i, item) in block.iter_mut().enumerate() {
                        f(base + i, item);
                    }
                    busy.stop(rectpart_obs::ExecStat::WorkerBusyNs);
                }));
            }
            let wait = rectpart_obs::StopWatch::start();
            for h in handles {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
            }
            wait.stop(rectpart_obs::ExecStat::JoinWaitNs);
        });
    }
}

/// Mutable-chunk map: splits `items` into `⌈len / chunk⌉` fixed-size
/// chunks, applies `f(chunk_index, &mut chunk)` to each in parallel, and
/// returns the per-chunk results in chunk order. The decomposition is
/// identical at every thread count.
pub fn map_chunks_mut<T, R, F>(items: &mut [T], chunk: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    rectpart_obs::exec_add(rectpart_obs::ExecStat::ParallelOps, 1);
    let n = items.len();
    let n_chunks = n.div_ceil(chunk);
    let threads = current_threads();
    if threads < 2 || n_chunks < 2 {
        return items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, block)| f(i, block))
            .collect();
    }
    #[cfg(feature = "threads")]
    {
        let workers = threads.min(n_chunks);
        rectpart_obs::exec_add(rectpart_obs::ExecStat::TasksSpawned, workers as u64);
        let f = &f;
        let span_ctx = rectpart_obs::span::fork_context();
        let span_ctx = &span_ctx;
        let mut blocks: Vec<Vec<R>> = std::thread::scope(|scope| {
            let mut rest = items;
            let mut chunk_offset = 0;
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                // Worker w owns chunks [w*n_chunks/workers, (w+1)*n_chunks/workers).
                // lint:allow(panic-reach) -- loop over 0..workers: workers >= 1
                let hi_chunk = (w + 1) * n_chunks / workers;
                let hi_elem = (hi_chunk * chunk).min(n);
                let lo_elem = (chunk_offset * chunk).min(n);
                // lint:allow(panic-reach) -- the per-worker element blocks
                // partition 0..n, so hi_elem - lo_elem <= rest.len()
                let (block, tail) = rest.split_at_mut(hi_elem - lo_elem);
                rest = tail;
                let base = chunk_offset;
                chunk_offset = hi_chunk;
                handles.push(scope.spawn(move || {
                    let _guard = ScopedGuard::set(1);
                    let _adopt = rectpart_obs::span::adopt(span_ctx);
                    let busy = rectpart_obs::StopWatch::start();
                    let out = block
                        .chunks_mut(chunk)
                        .enumerate()
                        .map(|(i, c)| f(base + i, c))
                        .collect::<Vec<R>>();
                    busy.stop(rectpart_obs::ExecStat::WorkerBusyNs);
                    out
                }));
            }
            let wait = rectpart_obs::StopWatch::start();
            let blocks: Vec<Vec<R>> = handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect();
            wait.stop(rectpart_obs::ExecStat::JoinWaitNs);
            blocks
        });
        let mut out = Vec::with_capacity(n_chunks);
        for block in &mut blocks {
            out.append(block);
        }
        out
    }
    #[cfg(not(feature = "threads"))]
    {
        items
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, block)| f(i, block))
            .collect()
    }
}

/// Splits `items` into `⌈len / chunk⌉` fixed-size chunks, maps each with
/// `f(chunk_index, chunk)` in parallel, and returns the per-chunk
/// results in chunk order. The chunk decomposition is identical at
/// every thread count, so a left fold over the result is deterministic.
pub fn map_chunks<T, R, F>(items: &[T], chunk: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let n_chunks = items.len().div_ceil(chunk);
    map_range(n_chunks, |i| {
        let lo = i * chunk;
        let hi = (lo + chunk).min(items.len());
        // lint:allow(panic-reach) -- i < n_chunks implies lo < items.len()
        // (ceil division), and hi is clamped to items.len()
        f(i, &items[lo..hi])
    })
}

/// Chunked map-reduce: maps chunks in parallel, then folds the partial
/// results **left to right** on the calling thread. With an associative
/// `fold`, the result matches the serial computation exactly.
pub fn chunked_reduce<T, R, M, FO>(items: &[T], chunk: usize, map: M, init: R, fold: FO) -> R
where
    T: Sync,
    R: Send,
    M: Fn(usize, &[T]) -> R + Sync,
    FO: FnMut(R, R) -> R,
{
    map_chunks(items, chunk, map).into_iter().fold(init, fold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_range_matches_serial_any_thread_count() {
        let expect: Vec<u64> = (0..1000u64).map(|i| i * i).collect();
        for t in [1, 2, 3, 7, 16] {
            let got = with_threads(t, || map_range(1000, |i| (i as u64) * (i as u64)));
            assert_eq!(got, expect, "threads = {t}");
        }
    }

    #[test]
    fn map_range_edge_sizes() {
        for t in [1, 4] {
            with_threads(t, || {
                assert_eq!(map_range(0, |i| i), Vec::<usize>::new());
                assert_eq!(map_range(1, |i| i + 10), vec![10]);
                assert_eq!(map_range(2, |i| i), vec![0, 1]);
            });
        }
    }

    #[test]
    fn join_is_positional_and_splits_budget() {
        let (a, b) = with_threads(4, || {
            join(|| (current_threads(), "a"), || (current_threads(), "b"))
        });
        assert_eq!(a.1, "a");
        assert_eq!(b.1, "b");
        if cfg!(feature = "threads") {
            assert_eq!(a.0 + b.0, 4);
        } else {
            assert_eq!((a.0, b.0), (1, 1));
        }
    }

    #[test]
    fn nested_joins_bottom_out() {
        fn depth_sum(budget_left: usize) -> usize {
            if budget_left == 0 {
                return current_threads();
            }
            let (x, y) = join(|| depth_sum(budget_left - 1), || depth_sum(budget_left - 1));
            x + y
        }
        // Regardless of nesting depth the leaf budgets stay bounded.
        let total = with_threads(4, || depth_sum(6));
        assert!(total >= 64, "each leaf reports at least budget 1");
    }

    #[test]
    fn for_each_indexed_mut_touches_every_slot_once() {
        for t in [1, 2, 5] {
            let mut v = vec![0usize; 97];
            with_threads(t, || for_each_indexed_mut(&mut v, |i, x| *x = i * 3));
            assert!(v.iter().enumerate().all(|(i, &x)| x == i * 3));
        }
    }

    #[test]
    fn chunked_reduce_is_order_stable() {
        let data: Vec<u64> = (0..10_000).collect();
        let serial: u64 = data.iter().sum();
        for t in [1, 3, 8] {
            let got = with_threads(t, || {
                chunked_reduce(
                    &data,
                    1024,
                    |_, c| c.iter().sum::<u64>(),
                    0u64,
                    |a, b| a + b,
                )
            });
            assert_eq!(got, serial);
        }
    }

    #[test]
    fn map_chunks_mut_matches_serial() {
        let expect: Vec<usize> = (0..11).collect(); // ceil(101/10) chunks
        for t in [1, 2, 4, 9] {
            let mut v = vec![1u64; 101];
            let sums = with_threads(t, || {
                map_chunks_mut(&mut v, 10, |i, c| {
                    for x in c.iter_mut() {
                        *x += i as u64;
                    }
                    i
                })
            });
            assert_eq!(sums, expect, "threads = {t}");
            // Chunk i (elements 10i..10i+10) got +i.
            assert!(v.iter().enumerate().all(|(j, &x)| x == 1 + (j / 10) as u64));
        }
    }

    #[test]
    fn flat_map_preserves_order() {
        let items: Vec<usize> = (0..50).collect();
        let expect: Vec<usize> = items.iter().flat_map(|&i| vec![i, i + 100]).collect();
        for t in [1, 4] {
            let got = with_threads(t, || flat_map_slice(&items, |&i| vec![i, i + 100]));
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn scoped_override_beats_global() {
        set_global_threads(3);
        assert_eq!(with_threads(2, current_threads), 2.min(current_max()));
        set_global_threads(0);

        fn current_max() -> usize {
            if cfg!(feature = "threads") {
                usize::MAX
            } else {
                1
            }
        }
    }

    #[test]
    fn deterministic_panic_still_propagates_after_retry() {
        // `f` panics on unit 73 every time: the worker panic is caught,
        // the block is retried inline, the retry hits unit 73 again, and
        // the panic surfaces on the calling thread.
        let caught = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_range(100, |i| {
                    if i == 73 {
                        panic!("boom at {i}");
                    }
                    i
                })
            })
        });
        assert!(caught.is_err());
    }

    #[cfg(all(feature = "faultinject", feature = "threads"))]
    #[test]
    fn injected_worker_panic_is_recovered_bit_identically() {
        let expect: Vec<u64> = (0..500u64).map(|i| i * 7).collect();
        rectpart_obs::fault::install(rectpart_obs::fault::FaultConfig {
            seed: 1,
            panic_workers: vec![0, 2],
            ..Default::default()
        });
        let got = with_threads(4, || map_range(500, |i| (i as u64) * 7));
        rectpart_obs::fault::clear();
        assert_eq!(got, expect);
    }

    #[test]
    fn host_cores_is_positive_and_budget_independent() {
        let n = host_cores();
        assert!(n >= 1);
        assert_eq!(with_threads(1, host_cores), n);
    }

    #[test]
    fn parallelism_config_pins_threads() {
        assert_eq!(ParallelismConfig::serial().run(current_threads), 1);
        let pinned = ParallelismConfig::threads(2).run(current_threads);
        assert_eq!(pinned, if cfg!(feature = "threads") { 2 } else { 1 });
    }
}
