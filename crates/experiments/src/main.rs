#![forbid(unsafe_code)]
//! `figures` — regenerates every figure of the IPDPS 2011 evaluation
//! (and the extension experiments) as CSV series + printed tables.
//!
//! ```text
//! cargo run -p rectpart-experiments --release -- all
//! cargo run -p rectpart-experiments --release -- fig7 fig8 --full
//! ```
//!
//! Options:
//!
//! ```text
//! --full        paper-scale instances and processor counts
//! --out <dir>   output directory (default: results/)
//! --threads <n> worker thread count (default: all cores)
//! ```

mod all_figs;
mod common;
mod ext_figs;
mod hier_figs;
mod instances;
mod jag_figs;
mod trace_figs;

use common::{out_dir, Scale};
use instances::Instances;

const FIGURES: &[&str] = &[
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "fig13", "fig14", "extA", "extB", "extC", "extD", "extE", "extF", "extG", "extH",
    "trace",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        usage();
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
            rectpart_parallel::set_global_threads(n);
        }
    }
    let scale = Scale {
        full: args.iter().any(|a| a == "--full"),
    };
    let out = out_dir(&args);
    let mut selected: Vec<&str> = args
        .iter()
        .filter(|a| FIGURES.contains(&a.as_str()))
        .map(|a| a.as_str())
        .collect();
    if args.iter().any(|a| a == "all") {
        selected = FIGURES.to_vec();
    }
    if selected.is_empty() {
        eprintln!("no figure selected");
        usage();
        std::process::exit(2);
    }
    println!(
        "rectpart experiment harness — scale: {}, output: {}",
        if scale.full {
            "FULL (paper)"
        } else {
            "default (laptop)"
        },
        out.display()
    );
    let inst = Instances::new(scale);
    let t0 = std::time::Instant::now();
    for fig in &selected {
        let t = std::time::Instant::now();
        match *fig {
            "fig1" => all_figs::fig1(&out),
            "fig2" => all_figs::fig2(&inst, &out),
            "fig3" => hier_figs::fig3(scale, &out),
            "fig4" => hier_figs::fig4(scale, &out),
            "fig5" => hier_figs::fig5(scale, &out),
            "fig6" => all_figs::fig6(scale, &out),
            "fig7" => jag_figs::fig7(&inst, &out),
            "fig8" => jag_figs::fig8(&inst, &out),
            "fig9" => jag_figs::fig9(scale, &out),
            "fig10" => hier_figs::fig10(scale, &out),
            "fig11" => hier_figs::fig11(&inst, &out),
            "fig12" => all_figs::fig12(&inst, &out),
            "fig13" => all_figs::fig13(&inst, &out),
            "fig14" => all_figs::fig14(&inst, &out),
            "extA" => ext_figs::ext_a(&inst, &out),
            "extB" => ext_figs::ext_b(&inst, &out),
            "extC" => ext_figs::ext_c(&inst, &out),
            "extD" => ext_figs::ext_d(scale, &out),
            "extE" => ext_figs::ext_e(&inst, &out),
            "extF" => ext_figs::ext_f(&inst, &out),
            "extG" => ext_figs::ext_g(&inst, &out),
            "extH" => ext_figs::ext_h(&inst, &out),
            "trace" => trace_figs::trace(scale, &out),
            _ => unreachable!(),
        }
        println!("    [{fig} done in {:.1}s]", t.elapsed().as_secs_f64());
    }
    println!(
        "\nall selected figures done in {:.1}s",
        t0.elapsed().as_secs_f64()
    );
}

fn usage() {
    println!(
        "usage: figures [all | fig1..fig14 | extA..extH | trace]... [--full] [--out DIR] [--threads N]"
    );
    println!("  trace needs --features obs for populated counter/trace sections");
    println!("figures: {}", FIGURES.join(" "));
}
