//! Figures 3, 4, 5, 10 and 11 — the hierarchical-algorithm studies.

use std::path::Path;

use rectpart_core::{HierRb, HierRelaxed, HierVariant, Partitioner, PrefixSum2D};
use rectpart_workloads::{diagonal, multi_peak, peak};

use crate::common::{Scale, Table};
use crate::instances::{aggregate_imbalance, Instances};

const VARIANTS: [HierVariant; 4] = [
    HierVariant::Load,
    HierVariant::Dist,
    HierVariant::Hor,
    HierVariant::Ver,
];

fn rb_variants() -> Vec<Box<dyn Partitioner>> {
    VARIANTS
        .iter()
        .map(|&variant| Box::new(HierRb { variant }) as Box<dyn Partitioner>)
        .collect()
}

fn relaxed_variants() -> Vec<Box<dyn Partitioner>> {
    VARIANTS
        .iter()
        .map(|&variant| {
            Box::new(HierRelaxed {
                variant,
                ..HierRelaxed::default()
            }) as Box<dyn Partitioner>
        })
        .collect()
}

/// Aggregated-instance sweep (the paper's 10-instance metric for
/// synthetic classes).
fn synthetic_sweep(
    id: &str,
    title: &str,
    instances: &[PrefixSum2D],
    algos: &[Box<dyn Partitioner>],
    ms: &[usize],
) -> Table {
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(id, title, "m", "load imbalance", columns);
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(ms, |&m| {
        algos
            .iter()
            .map(|a| Some(aggregate_imbalance(instances, a.as_ref(), m)))
            .collect()
    });
    for (&m, values) in ms.iter().zip(cells) {
        table.push(m as f64, values);
    }
    table
}

fn build_instances(build: impl Fn(u64) -> PrefixSum2D + Sync + Send, n: usize) -> Vec<PrefixSum2D> {
    rectpart_parallel::map_range(n, |i| build(i as u64))
}

/// Figure 3: the four `HIER-RB` variants on the Peak class
/// (1024² in the paper). Expected shape: imbalance grows with `m`;
/// `-LOAD` is the best variant overall.
pub fn fig3(scale: Scale, out: &Path) {
    let n = scale.pick(256, 1024);
    let count = scale.pick(3, 10);
    let instances = build_instances(
        |seed| crate::common::gamma(&peak(n, n, seed).build()),
        count,
    );
    let ms = scale.square_ms(2_500);
    let table = synthetic_sweep(
        "fig3",
        &format!("HIER-RB variants on {n}x{n} Peak ({count} instances)"),
        &instances,
        &rb_variants(),
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Figure 4: the four `HIER-RELAXED` variants on 512² Multi-peak.
/// Expected shape: `-LOAD` best; `-HOR`/`-VER` erratic below ~2000
/// processors, converging toward `-LOAD` beyond.
pub fn fig4(scale: Scale, out: &Path) {
    let n = scale.pick(192, 512);
    let count = scale.pick(3, 10);
    let instances = build_instances(
        |seed| crate::common::gamma(&multi_peak(n, n, seed).build()),
        count,
    );
    let ms = scale.square_ms(1_600);
    let table = synthetic_sweep(
        "fig4",
        &format!("HIER-RELAXED variants on {n}x{n} Multi-peak ({count} instances)"),
        &instances,
        &relaxed_variants(),
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Figure 5: `HIER-RELAXED` variants on 4096² Diagonal — shows where the
/// alternating variants start converging on a large matrix.
pub fn fig5(scale: Scale, out: &Path) {
    let n = scale.pick(1024, 4096);
    let count = scale.pick(2, 10);
    let instances = build_instances(
        |seed| crate::common::gamma(&diagonal(n, n, seed).build()),
        count,
    );
    let ms = scale.square_ms(1_600);
    let table = synthetic_sweep(
        "fig5",
        &format!("HIER-RELAXED variants on {n}x{n} Diagonal ({count} instances)"),
        &instances,
        &relaxed_variants(),
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Figure 10: `HIER-RB` vs `HIER-RELAXED` (both `-LOAD`) on 4096²
/// Diagonal. Expected shape: RELAXED clearly below RB.
pub fn fig10(scale: Scale, out: &Path) {
    let n = scale.pick(1024, 4096);
    let count = scale.pick(2, 10);
    let instances = build_instances(
        |seed| crate::common::gamma(&diagonal(n, n, seed).build()),
        count,
    );
    let algos: Vec<Box<dyn Partitioner>> =
        vec![Box::new(HierRb::load()), Box::new(HierRelaxed::load())];
    let ms = scale.square_ms(1_600);
    let table = synthetic_sweep(
        "fig10",
        &format!("Hierarchical methods on {n}x{n} Diagonal ({count} instances)"),
        &instances,
        &algos,
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Figure 11: hierarchical methods across the PIC-MAG trace at `m = 400`.
/// Expected shape: RELAXED usually better but erratic from snapshot to
/// snapshot; RB stable.
pub fn fig11(instances: &Instances, out: &Path) {
    let m = 400;
    let algos: Vec<Box<dyn Partitioner>> =
        vec![Box::new(HierRb::load()), Box::new(HierRelaxed::load())];
    let trace = instances.pic();
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "fig11",
        format!("Hierarchical methods on PIC-MAG with m = {m}"),
        "iteration",
        "load imbalance",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(trace, |snap| {
        let pfx = crate::common::gamma(&snap.matrix);
        algos
            .iter()
            .map(|a| Some(crate::common::run_imbalance(a.as_ref(), &pfx, m)))
            .collect()
    });
    for (snap, values) in trace.iter().zip(cells) {
        table.push(snap.iteration as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}
