//! Figures 7, 8 and 9 — the jagged-partitioning studies.

use std::path::Path;

use rectpart_core::{bounds, JagMHeur, JagMOpt, JagPqHeur, JagPqOpt, Partitioner};
use rectpart_workloads::uniform;

use crate::common::{run_imbalance, Scale, Table};
use crate::instances::Instances;

/// Figure 7: jagged methods on the PIC-MAG snapshot at iter≈30,000 while
/// `m` varies. `JAG-M-OPT` only up to its runtime cap (1,000 in the
/// paper). Expected shape: the two P×Q curves almost coincide; m-way
/// heuristic below them; m-way optimal lowest.
pub fn fig7(instances: &Instances, out: &Path) {
    let scale = instances.scale;
    let snap = instances.pic_at(30_000);
    let pfx = crate::common::gamma(&snap.matrix);
    let heuristics: Vec<Box<dyn Partitioner>> = vec![
        Box::new(JagPqHeur::best()),
        Box::new(JagPqOpt::default()),
        Box::new(JagMHeur::best()),
    ];
    let m_opt = JagMOpt::default();
    let m_opt_cap = scale.pick(256, 1_000);
    let pq_opt_cap = scale.pick(1_024, 10_000);
    let ms = scale.square_ms(6_400);

    let mut columns: Vec<String> = heuristics.iter().map(|a| a.name()).collect();
    columns.push(m_opt.name());
    let mut table = Table::new(
        "fig7",
        format!(
            "Jagged methods on PIC-MAG iter={} (paper: iter=30,000)",
            snap.iteration
        ),
        "m",
        "load imbalance",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(&ms, |&m| {
        let mut row: Vec<Option<f64>> = heuristics
            .iter()
            .enumerate()
            .map(|(i, a)| {
                // JAG-PQ-OPT has its own runtime cap.
                if i == 1 && m > pq_opt_cap {
                    None
                } else {
                    Some(run_imbalance(a.as_ref(), &pfx, m))
                }
            })
            .collect();
        row.push(if m <= m_opt_cap {
            Some(run_imbalance(&m_opt, &pfx, m))
        } else {
            None
        });
        row
    });
    for (&m, values) in ms.iter().zip(cells) {
        table.push(m as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Figure 8: jagged methods across the whole PIC-MAG trace at `m = 6400`
/// (scaled down by default). Expected shape: P×Q heuristic ≈ P×Q optimal
/// (flat band ~18% in the paper); m-way heuristic clearly below, varying
/// over time.
pub fn fig8(instances: &Instances, out: &Path) {
    let scale = instances.scale;
    let m = scale.pick(900, 6_400);
    let pq_opt_cap = scale.pick(1_024, 6_400);
    let algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(JagPqHeur::best()),
        Box::new(JagPqOpt::default()),
        Box::new(JagMHeur::best()),
    ];
    let trace = instances.pic();
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "fig8",
        format!("Jagged methods on PIC-MAG with m = {m}"),
        "iteration",
        "load imbalance",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(trace, |snap| {
        let pfx = crate::common::gamma(&snap.matrix);
        algos
            .iter()
            .enumerate()
            .map(|(i, a)| {
                if i == 1 && m > pq_opt_cap {
                    None
                } else {
                    Some(run_imbalance(a.as_ref(), &pfx, m))
                }
            })
            .collect()
    });
    for (snap, values) in trace.iter().zip(cells) {
        table.push(snap.iteration as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Figure 9: sensitivity of `JAG-M-HEUR` to the stripe count `P` on a
/// 514² Uniform instance with Δ = 1.2 and `m = 800`, against the
/// Theorem 3 worst-case guarantee. Expected shape: measured imbalance
/// follows the same U-shaped trend as the guarantee (log-scaled y in the
/// paper).
pub fn fig9(scale: Scale, out: &Path) {
    let n = 514;
    let m = 800;
    let matrix = uniform(n, n, 9).delta(1.2).build();
    let pfx = crate::common::gamma(&matrix);
    let delta = pfx.delta().expect("uniform instances are positive");
    let ps: Vec<usize> = (1..m.min(301))
        .filter(|&p| p <= 24 || (p <= 100 && p % 5 == 0) || p % 20 == 0)
        .collect();
    let _ = scale; // same instance at both scales (the paper's is small)
    let mut table = Table::new(
        "fig9",
        format!("JAG-M-HEUR stripe count on {n}x{n} Uniform delta=1.2, m={m}"),
        "P",
        "load imbalance",
        vec![
            "JAG-M-HEUR variable P".into(),
            "m-way jagged guarantee".into(),
        ],
    );
    let cells: Vec<(f64, f64)> = rectpart_parallel::map_slice(&ps, |&p| {
        let measured = run_imbalance(&JagMHeur::with_stripes(p), &pfx, m);
        let guarantee = if p < m {
            bounds::jag_m_heur_ratio(delta, p, m, n, n) - 1.0
        } else {
            f64::NAN
        };
        (measured, guarantee)
    });
    for (&p, (meas, guar)) in ps.iter().zip(cells) {
        table.push(p as f64, vec![Some(meas), Some(guar)]);
    }
    table.print();
    table.save(out).unwrap();
    // The paper's qualitative claim: the measured curve follows the
    // guarantee's trend, so the best observed P sits near the guarantee's
    // minimizer.
    let best_p = bounds::jag_m_heur_best_p(delta, m, n);
    println!(
        "    Theorem 4 optimal P = {best_p:.1} (sqrt(m) = {:.1})",
        (m as f64).sqrt()
    );
}
