//! Lazily built, run-wide shared instances (the PIC trace is expensive).

use std::sync::OnceLock;

use rectpart_core::{LoadMatrix, Partitioner, PrefixSum2D};
use rectpart_workloads::{pic_trace, slac_like, MeshConfig, PicConfig, PicSnapshot};

use crate::common::Scale;

/// Instance factory for one harness invocation.
pub struct Instances {
    pub scale: Scale,
    pic: OnceLock<Vec<PicSnapshot>>,
    slac: OnceLock<LoadMatrix>,
}

impl Instances {
    pub fn new(scale: Scale) -> Self {
        Self {
            scale,
            pic: OnceLock::new(),
            slac: OnceLock::new(),
        }
    }

    /// The PIC-MAG configuration at the current scale. Full scale matches
    /// the paper (512² grid, 68 snapshots labeled 0..33,500); default is
    /// a 192² grid with 24 snapshots.
    pub fn pic_config(&self) -> PicConfig {
        if self.scale.full {
            PicConfig::default()
        } else {
            PicConfig {
                rows: 192,
                cols: 192,
                particles: 150_000,
                snapshots: 24,
                ..PicConfig::default()
            }
        }
    }

    /// The full PIC-MAG snapshot trace (computed once per run).
    pub fn pic(&self) -> &[PicSnapshot] {
        self.pic.get_or_init(|| {
            let cfg = self.pic_config();
            eprintln!(
                "  [pic] simulating {}x{} grid, {} particles, {} snapshots…",
                cfg.rows, cfg.cols, cfg.particles, cfg.snapshots
            );
            pic_trace(&cfg)
        })
    }

    /// The snapshot whose nominal iteration is closest to `iter` scaled
    /// into this run's range (the paper's "iter=30,000" on a 33,500-long
    /// trace maps to the same relative position on shorter traces).
    pub fn pic_at(&self, paper_iter: u32) -> &PicSnapshot {
        let trace = self.pic();
        let frac = paper_iter as f64 / 33_500.0;
        let idx = ((trace.len() - 1) as f64 * frac).round() as usize;
        &trace[idx]
    }

    /// The SLAC-like projected cavity mesh (512² at both scales, as in
    /// the paper).
    pub fn slac(&self) -> &LoadMatrix {
        self.slac.get_or_init(|| {
            eprintln!("  [mesh] projecting cavity mesh…");
            if self.scale.full {
                MeshConfig {
                    u_samples: 4096,
                    v_samples: 2048,
                    ..MeshConfig::default()
                }
                .generate()
            } else {
                slac_like()
            }
        })
    }
}

/// The paper's aggregate metric for synthetic classes (§4.1):
/// `Σ_I Lmax(I) / Σ_I Lavg(I) − 1` over a set of instances.
pub fn aggregate_imbalance<P: Partitioner + ?Sized>(
    instances: &[PrefixSum2D],
    algo: &P,
    m: usize,
) -> f64 {
    let mut lmax_sum = 0.0;
    let mut lavg_sum = 0.0;
    for pfx in instances {
        let p = algo.partition(pfx, m);
        debug_assert!(p.validate(pfx).is_ok());
        lmax_sum += p.lmax(pfx) as f64;
        lavg_sum += pfx.average_load(m);
    }
    lmax_sum / lavg_sum - 1.0
}
