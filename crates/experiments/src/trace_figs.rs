//! `trace` — per-algorithm convergence traces and work counters.
//!
//! Runs the two algorithms with an iterative structure worth plotting —
//! RECT-NICOL (Lmax per refinement iteration) and JAG-M-OPT (binary
//! search over the stripe budget, one series per axis) — each against a
//! freshly reset recorder, and dumps one JSON file per algorithm with
//! the full counter report alongside the solution quality.
//!
//! The traces are only populated when the harness is built with
//! `--features obs`; without it each file still appears but its report
//! reads `"enabled": false`.

use std::path::Path;

use rectpart_core::{JagMOpt, Partitioner, RectNicol};
use rectpart_json::{Json, ToJson};
use rectpart_obs::Recorder;
use rectpart_workloads::{multi_peak, uniform};

use crate::common::Scale;

pub fn trace(scale: Scale, out: &Path) {
    std::fs::create_dir_all(out).expect("create output dir");
    let rec = Recorder::global();
    if !rec.enabled() {
        eprintln!(
            "  [trace] note: built without --features obs; \
             counter and trace sections will be empty"
        );
    }

    // RECT-NICOL refines on a mid-sized instance; the optimal m-way
    // jagged DP needs a small one.
    let nicol_n = scale.pick(128, 512);
    let nicol_m = scale.pick(25, 100);
    let opt_n = scale.pick(48, 96);
    let opt_m = scale.pick(12, 25);

    type Run = Box<dyn Fn() -> (u64, usize, usize)>;
    let runs: Vec<(&str, Run)> = vec![
        // A skewed instance: on near-uniform loads the refinement
        // converges immediately and the trace is flat.
        ("RECT-NICOL", {
            let pfx = crate::common::gamma(&multi_peak(nicol_n, nicol_n, 5).build());
            Box::new(move || {
                let p = RectNicol::default().partition(&pfx, nicol_m);
                (p.lmax(&pfx), nicol_n, nicol_m)
            })
        }),
        ("JAG-M-OPT", {
            let pfx = crate::common::gamma(&uniform(opt_n, opt_n, 5).delta(1.2).build());
            Box::new(move || {
                let p = JagMOpt::default().partition(&pfx, opt_m);
                (p.lmax(&pfx), opt_n, opt_m)
            })
        }),
    ];

    for (name, run) in &runs {
        rec.reset();
        let (lmax, n, m) = run();
        let report = rec.snapshot();
        let trace_len: usize = report.traces.iter().map(|(_, pts)| pts.len()).sum();
        let doc = Json::obj(vec![
            ("algorithm", name.to_json()),
            ("instance", format!("{n}x{n}").to_json()),
            ("m", m.to_json()),
            ("lmax", lmax.to_json()),
            ("stats", report.to_json()),
        ]);
        let path = out.join(format!("trace_{name}.json"));
        std::fs::write(&path, rectpart_json::to_string_pretty(&doc)).expect("write trace json");
        println!(
            "  trace {name}: lmax={lmax}, {trace_len} trace points -> {}",
            path.display()
        );
    }
}
