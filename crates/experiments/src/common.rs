//! Shared experiment plumbing: series tables, sweeps, timing, output.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use rectpart_core::{LoadMatrix, Partition, Partitioner, PrefixSum2D};
use rectpart_json::{Json, ToJson};

/// Builds the Γ prefix-sum structure for an experiment instance through
/// the fallible constructor (honoring the `RECTPART_GAMMA` backend
/// override). Experiment generators never overflow u64 totals, so an
/// `Err` here is a bug in the instance, not a recoverable condition.
pub fn gamma(matrix: &LoadMatrix) -> PrefixSum2D {
    PrefixSum2D::try_new(matrix).expect("experiment instance overflows u64 total load")
}

/// Experiment scale. Defaults to laptop-sized runs; `--full` switches to
/// the paper's instance sizes and processor counts.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    pub full: bool,
}

impl Scale {
    /// Picks the default- or full-scale value.
    pub fn pick<T>(&self, small: T, full: T) -> T {
        if self.full {
            full
        } else {
            small
        }
    }

    /// The paper's processor counts: "most square numbers between 16 and
    /// 10,000" — square numbers, capped at the scale's maximum.
    pub fn square_ms(&self, cap_small: usize) -> Vec<usize> {
        let cap = self.pick(cap_small, 10_000);
        square_numbers(16, cap)
    }
}

/// All square numbers in `[lo, hi]`, thinned to at most ~24 points so
/// sweeps stay readable.
pub fn square_numbers(lo: usize, hi: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (2..)
        .map(|k| k * k)
        .take_while(|&s| s <= hi)
        .filter(|&s| s >= lo)
        .collect();
    while v.len() > 24 {
        // Drop every other interior point, keeping first and last.
        let keep: Vec<usize> = v
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || *i == v.len() - 1 || i % 2 == 0)
            .map(|(_, &s)| s)
            .collect();
        v = keep;
    }
    v
}

/// One experiment output: an x-column plus one named series per
/// algorithm, mirroring the paper's figures.
#[derive(Clone, Debug)]
pub struct Table {
    pub id: String,
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub columns: Vec<String>,
    pub rows: Vec<Row>,
}

/// One x position and its per-series values (`None` = not measured, e.g.
/// `JAG-M-OPT` beyond its processor cap).
#[derive(Clone, Debug)]
pub struct Row {
    pub x: f64,
    pub values: Vec<Option<f64>>,
}

impl ToJson for Row {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("x", self.x.to_json()),
            ("values", self.values.to_json()),
        ])
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", self.id.to_json()),
            ("title", self.title.to_json()),
            ("xlabel", self.xlabel.to_json()),
            ("ylabel", self.ylabel.to_json()),
            ("columns", self.columns.to_json()),
            ("rows", self.rows.to_json()),
        ])
    }
}

impl Table {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        xlabel: impl Into<String>,
        ylabel: impl Into<String>,
        columns: Vec<String>,
    ) -> Self {
        Self {
            id: id.into(),
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            columns,
            rows: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, values: Vec<Option<f64>>) {
        assert_eq!(values.len(), self.columns.len());
        self.rows.push(Row { x, values });
    }

    /// Renders an aligned text table to stdout.
    pub fn print(&self) {
        println!("\n=== {} — {} ===", self.id, self.title);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len().max(10)).collect();
        let xw = self.xlabel.len().max(8);
        print!("{:>xw$}", self.xlabel);
        for (c, w) in self.columns.iter().zip(&widths) {
            print!("  {c:>w$}");
        }
        println!();
        for row in &self.rows {
            print!("{:>xw$}", trim_float(row.x));
            for (v, w) in row.values.iter().zip(&mut widths) {
                match v {
                    Some(v) => print!("  {:>w$}", format!("{v:.4}"), w = *w),
                    None => print!("  {:>w$}", "-", w = *w),
                }
            }
            println!();
        }
        println!("    ({} = series values)", self.ylabel);
    }

    /// Writes `<out>/<id>.csv` (and a JSON twin for tooling).
    pub fn save(&self, out: &Path) -> std::io::Result<()> {
        fs::create_dir_all(out)?;
        let csv = out.join(format!("{}.csv", self.id));
        let mut s = String::new();
        s.push_str(&self.xlabel);
        for c in &self.columns {
            s.push(',');
            s.push_str(c);
        }
        s.push('\n');
        for row in &self.rows {
            s.push_str(&trim_float(row.x));
            for v in &row.values {
                s.push(',');
                if let Some(v) = v {
                    s.push_str(&format!("{v:.6}"));
                }
            }
            s.push('\n');
        }
        fs::write(&csv, s)?;
        let json = out.join(format!("{}.json", self.id));
        fs::write(&json, rectpart_json::to_string_pretty(self))?;
        println!("    wrote {} and {}", csv.display(), json.display());
        Ok(())
    }
}

fn trim_float(x: f64) -> String {
    if (x - x.round()).abs() < 1e-9 {
        format!("{}", x.round() as i64)
    } else {
        format!("{x:.3}")
    }
}

/// Load-imbalance sweep of several algorithms over processor counts,
/// parallelized over the sweep grid.
pub fn imbalance_sweep(
    id: &str,
    title: &str,
    pfx: &PrefixSum2D,
    algos: &[Box<dyn Partitioner>],
    ms: &[usize],
) -> Table {
    let columns: Vec<String> = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(id, title, "m", "load imbalance", columns);
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(ms, |&m| {
        algos
            .iter()
            .map(|a| Some(run_imbalance(a, pfx, m)))
            .collect()
    });
    for (&m, values) in ms.iter().zip(cells) {
        table.push(m as f64, values);
    }
    table
}

/// Runs one algorithm, validates the partition, returns its imbalance.
pub fn run_imbalance<P: Partitioner + ?Sized>(algo: &P, pfx: &PrefixSum2D, m: usize) -> f64 {
    let p = algo.partition(pfx, m);
    debug_assert!(p.validate(pfx).is_ok(), "{} m={m}", algo.name());
    p.load_imbalance(pfx)
}

/// Runs one algorithm and returns `(partition, wall milliseconds)`.
pub fn timed_partition<P: Partitioner + ?Sized>(
    algo: &P,
    pfx: &PrefixSum2D,
    m: usize,
) -> (Partition, f64) {
    let t0 = Instant::now();
    let p = algo.partition(pfx, m);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    (p, ms)
}

/// Default output directory (`results/`), overridable with `--out`.
pub fn out_dir(args: &[String]) -> PathBuf {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_numbers_are_squares_in_range() {
        let v = square_numbers(16, 10_000);
        assert_eq!(v.first(), Some(&16));
        assert_eq!(v.last(), Some(&10_000));
        assert!(v.len() <= 24);
        for &s in &v {
            let r = (s as f64).sqrt().round() as usize;
            assert_eq!(r * r, s, "{s} is not a square");
        }
        assert!(v.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn square_numbers_small_range() {
        assert_eq!(square_numbers(16, 30), vec![16, 25]);
        assert!(square_numbers(17, 24).is_empty());
    }

    #[test]
    fn scale_pick_and_sweep() {
        let small = Scale { full: false };
        let full = Scale { full: true };
        assert_eq!(small.pick(1, 2), 1);
        assert_eq!(full.pick(1, 2), 2);
        assert!(small.square_ms(400).last().unwrap() <= &400);
        assert_eq!(full.square_ms(400).last(), Some(&10_000));
    }

    #[test]
    fn table_csv_shape() {
        let mut t = Table::new("t1", "demo", "m", "imbalance", vec!["a".into(), "b".into()]);
        t.push(4.0, vec![Some(0.5), None]);
        t.push(9.0, vec![Some(0.25), Some(1.0)]);
        let dir = std::env::temp_dir().join(format!("rectpart-exp-{}", std::process::id()));
        t.save(&dir).unwrap();
        let csv = std::fs::read_to_string(dir.join("t1.csv")).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "m,a,b");
        assert_eq!(lines[1], "4,0.500000,");
        assert_eq!(lines[2], "9,0.250000,1.000000");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic]
    fn table_rejects_wrong_arity() {
        let mut t = Table::new("t2", "demo", "x", "y", vec!["only".into()]);
        t.push(1.0, vec![Some(1.0), Some(2.0)]);
    }
}
