//! Figures 6, 12, 13 and 14 — cross-algorithm comparisons — plus the
//! figure 1/2 galleries.

use std::path::Path;

use rectpart_core::{
    standard_heuristics, HierRb, JagMHeur, JagPqHeur, JagPqOpt, LoadMatrix, Partition, Partitioner,
    RectNicol,
};
use rectpart_workloads::io::write_pgm;
use rectpart_workloads::{diagonal, multi_peak, peak, uniform};

use crate::common::{imbalance_sweep, run_imbalance, timed_partition, Scale, Table};
use crate::instances::Instances;

/// Figure 1: renders one representative partition per solution class on
/// a small peak instance, as ASCII art (the paper's structure gallery).
pub fn fig1(out: &Path) {
    let n = 16;
    let matrix = peak(n, n, 3).build();
    let pfx = crate::common::gamma(&matrix);
    let shapes: Vec<(&str, Partition)> = vec![
        (
            "(a) rectilinear 4x3 (RECT-NICOL)",
            RectNicol {
                grid: Some((4, 3)),
                ..RectNicol::default()
            }
            .partition(&pfx, 12),
        ),
        (
            "(b) PxQ-way jagged 4x3 (JAG-PQ-HEUR)",
            JagPqHeur {
                grid: Some((4, 3)),
                ..JagPqHeur::default()
            }
            .partition(&pfx, 12),
        ),
        (
            "(c) m-way jagged, m=12 (JAG-M-HEUR)",
            JagMHeur::best().partition(&pfx, 12),
        ),
        (
            "(d) hierarchical, m=12 (HIER-RB)",
            HierRb::load().partition(&pfx, 12),
        ),
    ];
    println!("\n=== fig1 — partition structure gallery ({n}x{n} Peak) ===");
    let mut gallery = String::new();
    for (label, part) in &shapes {
        assert!(part.validate(&pfx).is_ok());
        let art = part.ascii_art(n, n);
        println!(
            "{label}  (imbalance {:.3})\n{art}",
            part.load_imbalance(&pfx)
        );
        gallery.push_str(&format!("{label}\n{art}\n"));
    }
    std::fs::create_dir_all(out).unwrap();
    std::fs::write(out.join("fig1.txt"), gallery).unwrap();
    println!("    wrote {}", out.join("fig1.txt").display());
}

/// Figure 2: the instance gallery — statistics and PGM renderings of each
/// real and synthetic instance class.
pub fn fig2(instances: &Instances, out: &Path) {
    std::fs::create_dir_all(out).unwrap();
    let scale = instances.scale;
    let n = scale.pick(192, 512);
    let named: Vec<(&str, LoadMatrix)> = vec![
        ("pic-mag", instances.pic_at(20_000).matrix.clone()),
        ("slac", instances.slac().clone()),
        ("diagonal", diagonal(n, n, 1).build()),
        ("peak", peak(n, n, 1).build()),
        ("multi-peak", multi_peak(n, n, 1).build()),
        ("uniform", uniform(n, n, 1).delta(1.2).build()),
    ];
    println!("\n=== fig2 — instance gallery ===");
    println!(
        "{:>12}  {:>6}  {:>14}  {:>8}  {:>8}  {:>8}",
        "instance", "size", "total load", "max", "zeros%", "delta"
    );
    for (name, m) in &named {
        let zeros = m.data().iter().filter(|&&v| v == 0).count() as f64
            / (m.rows() * m.cols()) as f64
            * 100.0;
        println!(
            "{:>12}  {:>6}  {:>14}  {:>8}  {:>7.1}%  {:>8}",
            name,
            format!("{}x{}", m.rows(), m.cols()),
            m.total(),
            m.max_cell(),
            zeros,
            m.delta().map_or("-".into(), |d| format!("{d:.2}")),
        );
        write_pgm(m, &out.join(format!("fig2-{name}.pgm"))).unwrap();
    }
    println!("    wrote PGM renderings to {}", out.display());
}

/// Figure 6: wall-clock runtime of each algorithm on 512² Uniform with
/// Δ = 1.2 as `m` grows. Expected ordering (fastest to slowest):
/// RECT-UNIFORM ≪ HIER-RB < JAG heuristics < RECT-NICOL < HIER-RELAXED ≪
/// JAG-PQ-OPT.
pub fn fig6(scale: Scale, out: &Path) {
    let n = 512;
    let matrix = uniform(n, n, 6).delta(1.2).build();
    let pfx = crate::common::gamma(&matrix);
    let mut algos = standard_heuristics();
    algos.push(Box::new(JagPqOpt::default()));
    let pq_opt_cap = scale.pick(400, 10_000);
    let relaxed_cap = scale.pick(2_600, 10_000);
    let ms = scale.square_ms(2_500);
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "fig6",
        format!("Runtime (ms) on {n}x{n} Uniform delta=1.2"),
        "m",
        "runtime (ms)",
        columns,
    );
    // Sequential on purpose: timings must not contend for cores.
    for &m in &ms {
        let values = algos
            .iter()
            .map(|a| {
                let name = a.name();
                if (name.starts_with("JAG-PQ-OPT") && m > pq_opt_cap)
                    || (name.starts_with("HIER-RELAXED") && m > relaxed_cap)
                {
                    return None;
                }
                let (p, ms) = timed_partition(a.as_ref(), &pfx, m);
                debug_assert!(p.validate(&pfx).is_ok());
                Some(ms)
            })
            .collect();
        table.push(m as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Figure 12: the six heuristics across the PIC-MAG trace at the paper's
/// m = 9216 (scaled down by default). Expected layering, top to bottom:
/// RECT-UNIFORM ≫ RECT-NICOL ≈ JAG-PQ-HEUR > HIER-RB > HIER-RELAXED >
/// JAG-M-HEUR.
pub fn fig12(instances: &Instances, out: &Path) {
    let m = instances.scale.pick(900, 9_216);
    let algos = standard_heuristics();
    let trace = instances.pic();
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "fig12",
        format!("All heuristics on PIC-MAG with m = {m}"),
        "iteration",
        "load imbalance",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(trace, |snap| {
        let pfx = crate::common::gamma(&snap.matrix);
        algos
            .iter()
            .map(|a| Some(run_imbalance(a.as_ref(), &pfx, m)))
            .collect()
    });
    for (snap, values) in trace.iter().zip(cells) {
        table.push(snap.iteration as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Figure 13: the six heuristics on the PIC-MAG snapshot at iter≈20,000
/// while `m` varies.
pub fn fig13(instances: &Instances, out: &Path) {
    let snap = instances.pic_at(20_000);
    let pfx = crate::common::gamma(&snap.matrix);
    let algos = standard_heuristics();
    let ms = instances.scale.square_ms(2_500);
    let table = imbalance_sweep(
        "fig13",
        &format!(
            "All heuristics on PIC-MAG iter={} (paper: iter=20,000)",
            snap.iteration
        ),
        &pfx,
        &algos,
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Figure 14: the six heuristics on the sparse SLAC-like mesh. Expected
/// shape: the sparsity drives most algorithms to large imbalance; only
/// the hierarchical methods stay low, HIER-RELAXED lowest.
pub fn fig14(instances: &Instances, out: &Path) {
    let pfx = crate::common::gamma(instances.slac());
    let algos = standard_heuristics();
    let ms = instances.scale.square_ms(2_500);
    let table = imbalance_sweep(
        "fig14",
        "All heuristics on SLAC-like projected mesh",
        &pfx,
        &algos,
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}
