//! Extension experiments A–D: the paper's §5 future-work directions,
//! made measurable by the execution simulator.

use std::path::Path;

use rectpart_core::{standard_heuristics, JagMHeur, JaggedVariant, PrefixSum2D, StripeCount};
use rectpart_simexec::{dynamic_run, CommModel, RebalancePolicy, Simulator};
use rectpart_workloads::uniform;

use crate::common::{Scale, Table};
use crate::instances::{aggregate_imbalance, Instances};

/// Ext-A: halo-exchange communication volume of each heuristic on the
/// PIC-MAG snapshot as `m` grows. Expected shape: all rectangle classes
/// stay within a small factor of each other (the "implicit communication
/// minimization" the paper credits rectangles with); RECT-UNIFORM is the
/// baseline grid.
pub fn ext_a(instances: &Instances, out: &Path) {
    let snap = instances.pic_at(20_000);
    let pfx = crate::common::gamma(&snap.matrix);
    let algos = standard_heuristics();
    let sim = Simulator::default();
    let ms = instances.scale.square_ms(2_500);
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "extA",
        "Total halo volume (cells) on PIC-MAG iter~20,000",
        "m",
        "halo cells per iteration",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(&ms, |&m| {
        algos
            .iter()
            .map(|a| {
                let p = a.partition(&pfx, m);
                Some(sim.evaluate(&pfx, &p).comm_volume_total as f64)
            })
            .collect()
    });
    for (&m, values) in ms.iter().zip(cells) {
        table.push(m as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Ext-B: migration cost across the PIC-MAG trace under different
/// rebalancing policies (repartition always vs. imbalance-threshold).
pub fn ext_b(instances: &Instances, out: &Path) {
    let m = instances.scale.pick(400, 1_024);
    let trace: Vec<_> = instances.pic().iter().map(|s| s.matrix.clone()).collect();
    let algo = JagMHeur::best();
    let model = CommModel::default();
    let policies = [
        ("every-snapshot", RebalancePolicy::EverySnapshot),
        ("threshold-10%", RebalancePolicy::Threshold(0.10)),
        ("threshold-25%", RebalancePolicy::Threshold(0.25)),
    ];
    let runs: Vec<_> = policies
        .iter()
        .map(|(_, pol)| dynamic_run(&trace, &algo, m, &model, *pol))
        .collect();
    let mut columns = Vec::new();
    for (name, _) in &policies {
        columns.push(format!("{name} imbalance"));
        columns.push(format!("{name} migrated cells"));
    }
    let mut table = Table::new(
        "extB",
        format!("Dynamic rebalancing of PIC-MAG with JAG-M-HEUR, m = {m}"),
        "step",
        "imbalance / migrated cells",
        columns,
    );
    for step in 0..trace.len() {
        let mut values = Vec::new();
        for run in &runs {
            values.push(Some(run[step].imbalance));
            values.push(Some(run[step].migration_cells as f64));
        }
        table.push(step as f64, values);
    }
    table.print();
    for ((name, _), run) in policies.iter().zip(&runs) {
        let reparts = run.iter().filter(|s| s.repartitioned).count();
        let moved: u64 = run.iter().map(|s| s.migration_cells).sum();
        let avg_imb: f64 = run.iter().map(|s| s.imbalance).sum::<f64>() / run.len() as f64;
        println!(
            "    {name}: {reparts}/{} repartitions, {moved} cells moved, mean imbalance {avg_imb:.4}",
            run.len()
        );
    }
    table.save(out).unwrap();
}

/// Ext-C: end-to-end simulated speedup (compute + halo exchange) of each
/// heuristic on the PIC-MAG snapshot.
pub fn ext_c(instances: &Instances, out: &Path) {
    let snap = instances.pic_at(20_000);
    let pfx = crate::common::gamma(&snap.matrix);
    let algos = standard_heuristics();
    let sim = Simulator::default();
    let ms = instances.scale.square_ms(2_500);
    let columns = algos.iter().map(|a| a.name()).collect();
    let mut table = Table::new(
        "extC",
        "Simulated BSP speedup on PIC-MAG iter~20,000",
        "m",
        "speedup",
        columns,
    );
    let cells: Vec<Vec<Option<f64>>> = rectpart_parallel::map_slice(&ms, |&m| {
        algos
            .iter()
            .map(|a| {
                let p = a.partition(&pfx, m);
                Some(sim.evaluate(&pfx, &p).speedup)
            })
            .collect()
    });
    for (&m, values) in ms.iter().zip(cells) {
        table.push(m as f64, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Ext-D: stripe-count policy ablation for `JAG-M-HEUR` — `⌊√m⌋` vs the
/// Theorem 4 closed form — across matrix heterogeneity Δ.
pub fn ext_d(scale: Scale, out: &Path) {
    let n = scale.pick(256, 514);
    let m = scale.pick(900, 6_400);
    let count = scale.pick(3, 10);
    let deltas = [1.2, 2.0, 5.0, 10.0, 50.0];
    let policies = [
        ("JAG-M-HEUR sqrt(m)", StripeCount::SqrtM),
        ("JAG-M-HEUR Theorem-4 P", StripeCount::TheoremFour),
    ];
    let columns = policies.iter().map(|(n, _)| n.to_string()).collect();
    let mut table = Table::new(
        "extD",
        format!("Stripe-count ablation on {n}x{n} Uniform, m = {m} ({count} instances)"),
        "delta",
        "load imbalance",
        columns,
    );
    for &delta in &deltas {
        let instances: Vec<PrefixSum2D> = rectpart_parallel::map_range(count, |seed| {
            crate::common::gamma(&uniform(n, n, seed as u64).delta(delta).build())
        });
        let values = policies
            .iter()
            .map(|(_, stripes)| {
                let algo = JagMHeur {
                    variant: JaggedVariant::Best,
                    stripes: *stripes,
                };
                Some(aggregate_imbalance(&instances, &algo, m))
            })
            .collect();
        table.push(delta, values);
    }
    table.print();
    table.save(out).unwrap();
}

/// Ext-E: the §3.4 spiral class against the hierarchical and jagged
/// classes on the structured instances, showing where the extra pattern
/// freedom does (not) pay.
pub fn ext_e(instances: &Instances, out: &Path) {
    use rectpart_core::{HierRelaxed, JagMHeur, Partitioner, SpiralRelaxed};
    let snap = instances.pic_at(20_000);
    let pfx = crate::common::gamma(&snap.matrix);
    let algos: Vec<Box<dyn Partitioner>> = vec![
        Box::new(SpiralRelaxed::default()),
        Box::new(HierRelaxed::load()),
        Box::new(JagMHeur::best()),
    ];
    let ms = instances.scale.square_ms(2_500);
    let table = crate::common::imbalance_sweep(
        "extE",
        "Spiral vs hierarchical vs m-way jagged on PIC-MAG iter~20,000",
        &pfx,
        &algos,
        &ms,
    );
    table.print();
    table.save(out).unwrap();
}

/// Ext-F: 3D partitioning of the PIC-MAG volume against the paper's
/// accumulate-to-2D pipeline, over m.
pub fn ext_f(instances: &Instances, out: &Path) {
    use rectpart_core::{JagMHeur, Partitioner};
    use rectpart_volume::{Axis3, HierRb3, HierRelaxed3, JagMHeur3, Partitioner3, PrefixSum3D};
    use rectpart_workloads::{Pic3Config, Pic3Simulation};

    let scale = instances.scale;
    let planar = instances.pic_config();
    let cfg = Pic3Config {
        planar: rectpart_workloads::PicConfig {
            snapshots: 4,
            ..planar
        },
        depth: scale.pick(24, 64),
        vz_thermal: 0.3,
    };
    eprintln!(
        "  [pic3] simulating {}x{}x{} volume…",
        cfg.planar.rows, cfg.planar.cols, cfg.depth
    );
    let mut sim = Pic3Simulation::new(cfg.clone());
    let mut volume = None;
    for _ in 0..cfg.planar.snapshots {
        volume = Some(sim.next_snapshot().volume);
    }
    let volume = volume.unwrap();
    let pfx3 = PrefixSum3D::new(&volume);
    let flat = volume.flatten(Axis3::Z);
    let pfx2 = crate::common::gamma(&flat);

    let ms = scale.square_ms(1_600);
    let mut table = Table::new(
        "extF",
        "3D partitioning vs the paper's accumulate-to-2D pipeline (PIC-MAG volume)",
        "m",
        "load imbalance",
        vec![
            "flatten + JAG-M-HEUR (paper pipeline)".into(),
            "JAG-M-HEUR-3D".into(),
            "HIER-RB-3D-LOAD".into(),
            "HIER-RELAXED-3D-LOAD".into(),
        ],
    );
    for &m in &ms {
        let flat_imb = JagMHeur::best().partition(&pfx2, m).load_imbalance(&pfx2);
        let jag3 = JagMHeur3::new(&volume, Axis3::X)
            .partition(&pfx3, m)
            .load_imbalance(&pfx3);
        let hier3 = HierRb3.partition(&pfx3, m).load_imbalance(&pfx3);
        let relaxed3 = HierRelaxed3::default()
            .partition(&pfx3, m)
            .load_imbalance(&pfx3);
        table.push(
            m as f64,
            vec![Some(flat_imb), Some(jag3), Some(hier3), Some(relaxed3)],
        );
    }
    table.print();
    table.save(out).unwrap();
}

/// Ext-G: multilevel ablation — quality and runtime of partitioning a
/// block-coarsened matrix vs full resolution, over coarsening factors.
pub fn ext_g(instances: &Instances, out: &Path) {
    use rectpart_core::{JagMHeur, Multilevel, Partitioner};
    use std::time::Instant;

    let snap = instances.pic_at(20_000);
    let matrix = &snap.matrix;
    let pfx = crate::common::gamma(matrix);
    let m = instances.scale.pick(900, 9_216);
    let mut table = Table::new(
        "extG",
        format!("Multilevel coarsening ablation (JAG-M-HEUR, PIC-MAG, m = {m})"),
        "coarsening factor",
        "imbalance / runtime ms",
        vec!["imbalance".into(), "runtime ms".into()],
    );
    for factor in [1usize, 2, 4, 8, 16] {
        let ml = Multilevel::new(matrix, JagMHeur::best(), factor);
        let t0 = Instant::now();
        let part = ml.partition(&pfx, m);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        debug_assert!(part.validate(&pfx).is_ok());
        table.push(
            factor as f64,
            vec![Some(part.load_imbalance(&pfx)), Some(ms)],
        );
    }
    table.print();
    table.save(out).unwrap();
}

/// Ext-H: RECT-NICOL convergence — the paper's §3.1 claim that the
/// iterative refinement converges in "about 3-10 iterations for a
/// 514x514 matrix up to 10,000 processors" despite the O(n1·n2)
/// worst-case bound.
pub fn ext_h(instances: &Instances, out: &Path) {
    use rectpart_core::RectNicol;
    let scale = instances.scale;
    let uniform_pfx = crate::common::gamma(&uniform(514, 514, 31).delta(1.2).build());
    let pic_pfx = crate::common::gamma(&instances.pic_at(20_000).matrix);
    let ms = scale.square_ms(2_500);
    let mut table = Table::new(
        "extH",
        "RECT-NICOL refinement iterations until convergence",
        "m",
        "iterations",
        vec!["514x514 uniform".into(), "PIC-MAG".into()],
    );
    let cells: Vec<(usize, usize)> = rectpart_parallel::map_slice(&ms, |&m| {
        let (_, a) = RectNicol::default().partition_with_iterations(&uniform_pfx, m);
        let (_, b) = RectNicol::default().partition_with_iterations(&pic_pfx, m);
        (a, b)
    });
    let mut max_iters = 0;
    for (&m, (a, b)) in ms.iter().zip(cells) {
        max_iters = max_iters.max(a).max(b);
        table.push(m as f64, vec![Some(a as f64), Some(b as f64)]);
    }
    table.print();
    println!("    worst observed: {max_iters} iterations (paper: 3-10)");
    table.save(out).unwrap();
}
