//! The crash/resume differential suite: for every cancellable algorithm
//! family, at 1/2/4/7 threads, a solve that is interrupted mid-rung,
//! snapshotted, serialized to disk, reloaded and resumed must produce
//! the *bit-identical* [`SolveOutcome`] of an uninterrupted run — same
//! partition, same per-rung work ledger, same report.
//!
//! Every test arms the process-global cancellation deadline, so the
//! whole file serializes on one mutex.

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

use rectpart_core::{LoadMatrix, RectpartError};
use rectpart_parallel::with_threads;
use rectpart_resume::{load_snapshot, write_snapshot, FileCheckpointer, MemorySink};
use rectpart_robust::{SolveOutcome, SolverDriver};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn demo_matrix() -> LoadMatrix {
    LoadMatrix::from_fn(24, 18, |r, c| ((r * 31 + c * 17) % 97 + 1) as u32)
}

fn snapshot_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rectpart-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}.snapshot"))
}

/// Interrupt a single-rung solve of `algo` mid-rung at `threads`
/// threads, persist the forced snapshot, reload it, resume, and return
/// (uninterrupted outcome, resumed outcome).
fn interrupt_and_resume(algo: &str, threads: usize) -> (SolveOutcome, SolveOutcome) {
    let matrix = demo_matrix();
    let m = 6;
    let driver = SolverDriver::new().with_ladder([algo, "RECT-UNIFORM"]);

    rectpart_obs::cancel::disarm();
    let clean = with_threads(threads, || driver.try_solve(&matrix, m))
        .unwrap_or_else(|f| panic!("{algo}: clean solve failed: {f}"));

    // Arm the deadline exactly at the rung-start meter value (right
    // after the Γ build), so the first in-rung poll observes it even
    // for algorithms that charge no work of their own.
    let rung_work: u64 = clean.report.rungs.iter().map(|r| r.work).sum();
    let pre_rung_work = clean.report.total_work - rung_work;
    let path = snapshot_path(&format!("{algo}-t{threads}"));
    let mut sink = FileCheckpointer::new(&path, 0);
    rectpart_obs::cancel::arm_at(rectpart_obs::work::spent() + pre_rung_work);
    let interrupted = with_threads(threads, || {
        driver.try_solve_checkpointed(&matrix, m, &mut sink)
    });
    rectpart_obs::cancel::disarm();

    let failure = interrupted.expect_err("armed deadline must cancel the solve");
    assert_eq!(
        failure.error,
        RectpartError::Cancelled,
        "{algo} at {threads} threads: expected cancellation"
    );
    assert!(sink.writes() >= 1, "{algo}: no snapshot was written");
    assert_eq!(sink.last_error(), None);

    let progress = load_snapshot(&path)
        .unwrap_or_else(|e| panic!("{algo}: reloading own snapshot failed: {e}"));
    let resumed = with_threads(threads, || driver.resume_from(&progress, &matrix, m))
        .unwrap_or_else(|f| panic!("{algo}: resume failed: {f}"));
    std::fs::remove_file(&path).ok();
    (clean, resumed)
}

/// The tentpole acceptance criterion: interrupt → snapshot → reload →
/// resume is bit-identical to an uninterrupted run, for every
/// cancellable algorithm family, at every thread count — and the
/// outcome is also identical *across* thread counts.
#[test]
fn interrupted_resume_is_bit_identical_for_every_family() {
    let _guard = lock();
    // Every registry family that observes the cancellation deadline at
    // its serial work-meter checkpoints.
    let families = [
        "JAG-M-OPT-BEST",
        "JAG-M-HEUR-BEST",
        "JAG-PQ-HEUR-BEST",
        "RECT-NICOL",
        "HIER-RB-LOAD",
        "HIER-RELAXED-LOAD",
    ];
    for algo in families {
        let mut outcomes: Vec<SolveOutcome> = Vec::new();
        for threads in THREAD_COUNTS {
            let (clean, resumed) = interrupt_and_resume(algo, threads);
            assert_eq!(
                resumed, clean,
                "{algo} at {threads} threads: resumed outcome diverged from uninterrupted\n\
                 clean:\n{}\nresumed:\n{}",
                clean.report, resumed.report
            );
            outcomes.push(resumed);
        }
        for pair in outcomes.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "{algo}: outcome differs across thread counts"
            );
        }
    }
}

/// A resumed run keeps checkpointing: interrupt it a second time and
/// resume again — still bit-identical.
#[test]
fn double_interruption_still_converges() {
    let _guard = lock();
    let matrix = demo_matrix();
    let m = 6;
    let driver = SolverDriver::new().with_ladder(["JAG-M-OPT-BEST", "RECT-NICOL", "RECT-UNIFORM"]);

    rectpart_obs::cancel::disarm();
    let clean = with_threads(2, || driver.try_solve(&matrix, m)).unwrap();
    let rung_work: u64 = clean.report.rungs.iter().map(|r| r.work).sum();
    let pre = clean.report.total_work - rung_work;

    // First interruption, mid rung 0.
    let path = snapshot_path("double");
    let mut sink = FileCheckpointer::new(&path, 0);
    rectpart_obs::cancel::arm_at(rectpart_obs::work::spent() + pre);
    let first = with_threads(2, || driver.try_solve_checkpointed(&matrix, m, &mut sink));
    rectpart_obs::cancel::disarm();
    assert_eq!(first.unwrap_err().error, RectpartError::Cancelled);

    // Second interruption: resume, but cancel again mid rung 0.
    let progress = load_snapshot(&path).unwrap();
    let mut sink2 = FileCheckpointer::new(&path, 0);
    rectpart_obs::cancel::arm_at(rectpart_obs::work::spent() + 1);
    let second = with_threads(2, || {
        driver.resume_checkpointed(&progress, &matrix, m, &mut sink2)
    });
    rectpart_obs::cancel::disarm();
    assert_eq!(second.unwrap_err().error, RectpartError::Cancelled);

    // Final resume runs to completion.
    let progress = load_snapshot(&path).unwrap();
    let resumed = with_threads(2, || driver.resume_from(&progress, &matrix, m)).unwrap();
    assert_eq!(resumed, clean);
    std::fs::remove_file(&path).ok();
}

/// Crash-after-checkpoint differential without cancellation: persist a
/// routine rung-boundary checkpoint of a multi-rung walk and resume
/// from it. (Rungs demote naturally here via an unsatisfiable budget on
/// the first rung — no faultinject needed.)
#[test]
fn routine_boundary_checkpoint_resumes_identically() {
    let _guard = lock();
    let matrix = demo_matrix();
    let m = 6;
    // A budget large enough for the heuristic rungs but too small for
    // the exact DP: rung 0 is skipped by estimate, later rungs run.
    let driver = SolverDriver::new().with_budget(40_000);

    rectpart_obs::cancel::disarm();
    for threads in THREAD_COUNTS {
        let clean = with_threads(threads, || driver.try_solve(&matrix, m)).unwrap();
        let mut sink = MemorySink::new();
        let watched = with_threads(threads, || {
            driver.try_solve_checkpointed(&matrix, m, &mut sink)
        })
        .unwrap();
        assert_eq!(watched, clean);
        for (i, (progress, force)) in sink.checkpoints.iter().enumerate() {
            assert!(!force, "routine checkpoints must not be forced");
            let path = snapshot_path(&format!("boundary-{i}-t{threads}"));
            write_snapshot(&path, progress).unwrap();
            let reloaded = load_snapshot(&path).unwrap();
            assert_eq!(&reloaded, progress);
            let resumed =
                with_threads(threads, || driver.resume_from(&reloaded, &matrix, m)).unwrap();
            assert_eq!(
                resumed, clean,
                "resume from boundary checkpoint {i} at {threads} threads diverged"
            );
            std::fs::remove_file(&path).ok();
        }
    }
}

/// Corrupt or mismatched snapshots must never be silently loaded.
#[test]
fn corrupt_snapshots_are_always_refused() {
    let _guard = lock();
    let matrix = demo_matrix();
    let m = 6;
    let driver = SolverDriver::new();

    rectpart_obs::cancel::disarm();
    let mut sink = MemorySink::new();
    with_threads(2, || driver.try_solve_checkpointed(&matrix, m, &mut sink)).unwrap();
    let (progress, _) = sink.checkpoints.first().expect("one boundary checkpoint");

    let path = snapshot_path("corrupt");
    write_snapshot(&path, progress).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();

    // Truncations (all strict prefixes short of the full content).
    for cut in (0..text.len() - 1).step_by(11) {
        std::fs::write(&path, &text[..cut]).unwrap();
        assert!(
            matches!(
                load_snapshot(&path),
                Err(RectpartError::SnapshotCorrupt { .. })
            ),
            "truncation to {cut} bytes must be refused"
        );
    }
    // Bit flips under an intact footer.
    let payload_len = text.rfind(rectpart_resume::SNAPSHOT_MAGIC).unwrap();
    for at in (0..payload_len).step_by(13) {
        let mut evil = text.clone().into_bytes();
        evil[at] ^= 0x01;
        std::fs::write(&path, &evil).unwrap();
        assert!(
            matches!(
                load_snapshot(&path),
                Err(RectpartError::SnapshotCorrupt { .. })
            ),
            "bit flip at byte {at} must be refused"
        );
    }
    // A pristine snapshot against the wrong instance.
    std::fs::write(&path, &text).unwrap();
    let reloaded = load_snapshot(&path).unwrap();
    let other = LoadMatrix::from_fn(24, 18, |r, c| ((r * 13 + c * 29) % 89 + 1) as u32);
    let failure = driver.resume_from(&reloaded, &other, m).unwrap_err();
    assert!(
        matches!(failure.error, RectpartError::SnapshotCorrupt { .. }),
        "fingerprint mismatch must be refused, got {}",
        failure.error
    );
    let failure = driver.resume_from(&reloaded, &matrix, m + 1).unwrap_err();
    assert!(
        matches!(failure.error, RectpartError::SnapshotCorrupt { .. }),
        "part-count mismatch must be refused, got {}",
        failure.error
    );
    std::fs::remove_file(&path).ok();
}

/// Observability satellites: snapshot writes and resume hits tick their
/// counters when the `obs` feature is on; without it the calls are
/// no-ops and this test still passes trivially.
#[test]
fn resume_counters_tick() {
    let _guard = lock();
    let matrix = demo_matrix();
    let m = 6;
    let driver = SolverDriver::new();
    rectpart_obs::cancel::disarm();

    let counter = |name: &str| {
        rectpart_obs::Recorder::global()
            .snapshot()
            .get(name)
            .unwrap_or(0)
    };
    let path = snapshot_path("counters");
    let mut sink = FileCheckpointer::new(&path, 0);
    let writes_before = counter("resume.snapshot_writes");
    let resumes_before = counter("resume.resume_hits");
    with_threads(2, || driver.try_solve_checkpointed(&matrix, m, &mut sink)).unwrap();
    let progress = load_snapshot(&path).unwrap();
    with_threads(2, || driver.resume_from(&progress, &matrix, m)).unwrap();

    let wrote = counter("resume.snapshot_writes") - writes_before;
    let resumed = counter("resume.resume_hits") - resumes_before;
    if cfg!(feature = "obs") {
        assert_eq!(wrote, sink.writes());
        assert!(resumed >= 1);
    } else {
        assert_eq!(wrote + resumed, 0);
    }
    std::fs::remove_file(&path).ok();
}
