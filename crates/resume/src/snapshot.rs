//! Snapshot serialization with a torn-write-detecting footer, plus the
//! interval-based [`FileCheckpointer`] sink.
//!
//! # File format
//!
//! A snapshot file is a pretty-printed JSON payload (the serialized
//! [`SolveProgress`]) followed by one footer line:
//!
//! ```text
//! RECTPART-SNAPSHOT-V1 len=<payload bytes> fnv=<16-hex FNV-1a of payload>
//! ```
//!
//! The footer is written *after* the payload in a single buffered write
//! to a sibling `*.tmp` file, which is then atomically renamed over the
//! destination. A crash mid-write therefore leaves either the previous
//! complete snapshot or a `*.tmp` that is never read; a crash mid-rename
//! is resolved by the filesystem. Even if a torn file does reach the
//! loader (copied mid-write, truncated by a full disk), the footer
//! catches it: a missing footer, a length mismatch or a checksum
//! mismatch each yield [`RectpartError::SnapshotCorrupt`] — a damaged
//! snapshot is never silently loaded.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rectpart_core::{PartitionError, Rect, RectpartError};
use rectpart_json::Json;
use rectpart_robust::{CheckpointSink, RungOutcome, RungReport, SolveProgress};

/// Magic token opening the snapshot footer line; the `V1` suffix is the
/// file-format version (bumped only on incompatible layout changes).
pub const SNAPSHOT_MAGIC: &str = "RECTPART-SNAPSHOT-V1";

/// Payload-level format version stored inside the JSON document.
const PAYLOAD_VERSION: u64 = 1;

/// FNV-1a over a byte slice — the snapshot footer checksum. The same
/// fold [`rectpart_robust::matrix_fingerprint`] uses for instance
/// identity, here applied to the serialized payload bytes.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn corrupt(reason: impl Into<String>) -> RectpartError {
    RectpartError::SnapshotCorrupt {
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------
// JSON codecs. `SolveProgress` and its nested types live in
// `rectpart-robust`, and `ToJson`/`FromJson` live in `rectpart-json`;
// the orphan rule keeps this crate from implementing one for the other,
// so the codecs are free functions.
// ---------------------------------------------------------------------

fn field_u64(j: &Json, key: &str) -> Result<u64, RectpartError> {
    j.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| corrupt(format!("field `{key}` missing or not an unsigned integer")))
}

fn field_usize(j: &Json, key: &str) -> Result<usize, RectpartError> {
    j.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| corrupt(format!("field `{key}` missing or not a usize")))
}

fn field_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, RectpartError> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| corrupt(format!("field `{key}` missing or not a string")))
}

fn field_array<'a>(j: &'a Json, key: &str) -> Result<&'a [Json], RectpartError> {
    j.get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| corrupt(format!("field `{key}` missing or not an array")))
}

fn kind_of(j: &Json) -> Result<&str, RectpartError> {
    field_str(j, "kind")
}

fn rect_to_json(r: &Rect) -> Json {
    Json::obj(vec![
        ("r0", Json::UInt(r.r0 as u64)),
        ("r1", Json::UInt(r.r1 as u64)),
        ("c0", Json::UInt(r.c0 as u64)),
        ("c1", Json::UInt(r.c1 as u64)),
    ])
}

fn rect_from_json(j: &Json) -> Result<Rect, RectpartError> {
    let r0 = field_usize(j, "r0")?;
    let r1 = field_usize(j, "r1")?;
    let c0 = field_usize(j, "c0")?;
    let c1 = field_usize(j, "c1")?;
    if r0 > r1 || c0 > c1 {
        return Err(corrupt(format!(
            "inverted rectangle bounds in snapshot: rows {r0}..{r1}, cols {c0}..{c1}"
        )));
    }
    Ok(Rect { r0, r1, c0, c1 })
}

fn partition_error_to_json(e: &PartitionError) -> Json {
    match e {
        PartitionError::OutOfBounds { index, rect } => Json::obj(vec![
            ("kind", Json::Str("out_of_bounds".into())),
            ("index", Json::UInt(*index as u64)),
            ("rect", rect_to_json(rect)),
        ]),
        PartitionError::Overlap { a, b } => Json::obj(vec![
            ("kind", Json::Str("overlap".into())),
            ("a", Json::UInt(*a as u64)),
            ("b", Json::UInt(*b as u64)),
        ]),
        PartitionError::Uncovered { covered, expected } => Json::obj(vec![
            ("kind", Json::Str("uncovered".into())),
            ("covered", Json::UInt(*covered as u64)),
            ("expected", Json::UInt(*expected as u64)),
        ]),
        PartitionError::TooManyParts { parts, m } => Json::obj(vec![
            ("kind", Json::Str("too_many_parts".into())),
            ("parts", Json::UInt(*parts as u64)),
            ("m", Json::UInt(*m as u64)),
        ]),
    }
}

fn partition_error_from_json(j: &Json) -> Result<PartitionError, RectpartError> {
    match kind_of(j)? {
        "out_of_bounds" => Ok(PartitionError::OutOfBounds {
            index: field_usize(j, "index")?,
            rect: rect_from_json(j.field("rect").map_err(|e| corrupt(e.to_string()))?)?,
        }),
        "overlap" => Ok(PartitionError::Overlap {
            a: field_usize(j, "a")?,
            b: field_usize(j, "b")?,
        }),
        "uncovered" => Ok(PartitionError::Uncovered {
            covered: field_usize(j, "covered")?,
            expected: field_usize(j, "expected")?,
        }),
        "too_many_parts" => Ok(PartitionError::TooManyParts {
            parts: field_usize(j, "parts")?,
            m: field_usize(j, "m")?,
        }),
        other => Err(corrupt(format!("unknown partition error kind {other:?}"))),
    }
}

fn error_to_json(e: &RectpartError) -> Json {
    match e {
        RectpartError::Overflow => Json::obj(vec![("kind", Json::Str("overflow".into()))]),
        RectpartError::EmptyMatrix { rows, cols } => Json::obj(vec![
            ("kind", Json::Str("empty_matrix".into())),
            ("rows", Json::UInt(*rows as u64)),
            ("cols", Json::UInt(*cols as u64)),
        ]),
        RectpartError::RaggedRow { row, expected, got } => Json::obj(vec![
            ("kind", Json::Str("ragged_row".into())),
            ("row", Json::UInt(*row as u64)),
            ("expected", Json::UInt(*expected as u64)),
            ("got", Json::UInt(*got as u64)),
        ]),
        RectpartError::DimMismatch { rows, cols, len } => Json::obj(vec![
            ("kind", Json::Str("dim_mismatch".into())),
            ("rows", Json::UInt(*rows as u64)),
            ("cols", Json::UInt(*cols as u64)),
            ("len", Json::UInt(*len as u64)),
        ]),
        RectpartError::ZeroParts => Json::obj(vec![("kind", Json::Str("zero_parts".into()))]),
        RectpartError::TooManyParts { m, cells } => Json::obj(vec![
            ("kind", Json::Str("too_many_parts".into())),
            ("m", Json::UInt(*m as u64)),
            ("cells", Json::UInt(*cells as u64)),
        ]),
        RectpartError::BudgetExhausted { budget, spent } => Json::obj(vec![
            ("kind", Json::Str("budget_exhausted".into())),
            ("budget", Json::UInt(*budget)),
            ("spent", Json::UInt(*spent)),
        ]),
        RectpartError::WorkerPanic { rung } => Json::obj(vec![
            ("kind", Json::Str("worker_panic".into())),
            ("rung", Json::Str(rung.clone())),
        ]),
        RectpartError::InvalidSolution(cause) => Json::obj(vec![
            ("kind", Json::Str("invalid_solution".into())),
            ("cause", partition_error_to_json(cause)),
        ]),
        RectpartError::UnknownAlgorithm(name) => Json::obj(vec![
            ("kind", Json::Str("unknown_algorithm".into())),
            ("name", Json::Str(name.clone())),
        ]),
        RectpartError::Cancelled => Json::obj(vec![("kind", Json::Str("cancelled".into()))]),
        RectpartError::SnapshotCorrupt { reason } => Json::obj(vec![
            ("kind", Json::Str("snapshot_corrupt".into())),
            ("reason", Json::Str(reason.clone())),
        ]),
        RectpartError::RowOutOfRange { row, rows } => Json::obj(vec![
            ("kind", Json::Str("row_out_of_range".into())),
            ("row", Json::UInt(*row as u64)),
            ("rows", Json::UInt(*rows as u64)),
        ]),
        RectpartError::RegionOutOfRange { region, rows, cols } => Json::obj(vec![
            ("kind", Json::Str("region_out_of_range".into())),
            ("region", rect_to_json(region)),
            ("rows", Json::UInt(*rows as u64)),
            ("cols", Json::UInt(*cols as u64)),
        ]),
    }
}

fn error_from_json(j: &Json) -> Result<RectpartError, RectpartError> {
    match kind_of(j)? {
        "overflow" => Ok(RectpartError::Overflow),
        "empty_matrix" => Ok(RectpartError::EmptyMatrix {
            rows: field_usize(j, "rows")?,
            cols: field_usize(j, "cols")?,
        }),
        "ragged_row" => Ok(RectpartError::RaggedRow {
            row: field_usize(j, "row")?,
            expected: field_usize(j, "expected")?,
            got: field_usize(j, "got")?,
        }),
        "dim_mismatch" => Ok(RectpartError::DimMismatch {
            rows: field_usize(j, "rows")?,
            cols: field_usize(j, "cols")?,
            len: field_usize(j, "len")?,
        }),
        "zero_parts" => Ok(RectpartError::ZeroParts),
        "too_many_parts" => Ok(RectpartError::TooManyParts {
            m: field_usize(j, "m")?,
            cells: field_usize(j, "cells")?,
        }),
        "budget_exhausted" => Ok(RectpartError::BudgetExhausted {
            budget: field_u64(j, "budget")?,
            spent: field_u64(j, "spent")?,
        }),
        "worker_panic" => Ok(RectpartError::WorkerPanic {
            rung: field_str(j, "rung")?.to_string(),
        }),
        "invalid_solution" => Ok(RectpartError::InvalidSolution(partition_error_from_json(
            j.field("cause").map_err(|e| corrupt(e.to_string()))?,
        )?)),
        "unknown_algorithm" => Ok(RectpartError::UnknownAlgorithm(
            field_str(j, "name")?.to_string(),
        )),
        "cancelled" => Ok(RectpartError::Cancelled),
        "snapshot_corrupt" => Ok(RectpartError::SnapshotCorrupt {
            reason: field_str(j, "reason")?.to_string(),
        }),
        "row_out_of_range" => Ok(RectpartError::RowOutOfRange {
            row: field_usize(j, "row")?,
            rows: field_usize(j, "rows")?,
        }),
        "region_out_of_range" => Ok(RectpartError::RegionOutOfRange {
            region: rect_from_json(j.field("region").map_err(|e| corrupt(e.to_string()))?)?,
            rows: field_usize(j, "rows")?,
            cols: field_usize(j, "cols")?,
        }),
        other => Err(corrupt(format!("unknown error kind {other:?}"))),
    }
}

fn outcome_to_json(o: &RungOutcome) -> Json {
    match o {
        RungOutcome::Answered { lmax } => Json::obj(vec![
            ("kind", Json::Str("answered".into())),
            ("lmax", Json::UInt(*lmax)),
        ]),
        RungOutcome::Failed { error } => Json::obj(vec![
            ("kind", Json::Str("failed".into())),
            ("error", error_to_json(error)),
        ]),
        RungOutcome::SkippedEstimate {
            estimate,
            remaining,
        } => Json::obj(vec![
            ("kind", Json::Str("skipped_estimate".into())),
            ("estimate", Json::UInt(*estimate)),
            ("remaining", Json::UInt(*remaining)),
        ]),
        RungOutcome::CircuitOpen { trips } => Json::obj(vec![
            ("kind", Json::Str("circuit_open".into())),
            ("trips", Json::UInt(u64::from(*trips))),
        ]),
        RungOutcome::NotReached => Json::obj(vec![("kind", Json::Str("not_reached".into()))]),
    }
}

fn outcome_from_json(j: &Json) -> Result<RungOutcome, RectpartError> {
    match kind_of(j)? {
        "answered" => Ok(RungOutcome::Answered {
            lmax: field_u64(j, "lmax")?,
        }),
        "failed" => Ok(RungOutcome::Failed {
            error: error_from_json(j.field("error").map_err(|e| corrupt(e.to_string()))?)?,
        }),
        "skipped_estimate" => Ok(RungOutcome::SkippedEstimate {
            estimate: field_u64(j, "estimate")?,
            remaining: field_u64(j, "remaining")?,
        }),
        "circuit_open" => {
            let trips = field_u64(j, "trips")?;
            let trips = u32::try_from(trips)
                .map_err(|_| corrupt(format!("circuit_open trips {trips} exceeds u32")))?;
            Ok(RungOutcome::CircuitOpen { trips })
        }
        "not_reached" => Ok(RungOutcome::NotReached),
        other => Err(corrupt(format!("unknown rung outcome kind {other:?}"))),
    }
}

fn rung_to_json(r: &RungReport) -> Json {
    Json::obj(vec![
        ("name", Json::Str(r.name.clone())),
        ("outcome", outcome_to_json(&r.outcome)),
        ("work", Json::UInt(r.work)),
        ("attempts", Json::UInt(u64::from(r.attempts))),
        ("spent_after", Json::UInt(r.spent_after)),
    ])
}

fn rung_from_json(j: &Json) -> Result<RungReport, RectpartError> {
    let attempts = field_u64(j, "attempts")?;
    let attempts = u32::try_from(attempts)
        .map_err(|_| corrupt(format!("rung attempts {attempts} exceeds u32")))?;
    Ok(RungReport {
        name: field_str(j, "name")?.to_string(),
        outcome: outcome_from_json(j.field("outcome").map_err(|e| corrupt(e.to_string()))?)?,
        work: field_u64(j, "work")?,
        attempts,
        spent_after: field_u64(j, "spent_after")?,
    })
}

/// Serializes a [`SolveProgress`] into the snapshot JSON document
/// (payload only, no checksum footer).
pub fn progress_to_json(p: &SolveProgress) -> Json {
    Json::obj(vec![
        ("version", Json::UInt(PAYLOAD_VERSION)),
        (
            "ladder",
            Json::Arr(p.ladder.iter().map(|s| Json::Str(s.clone())).collect()),
        ),
        (
            "budget",
            match p.budget {
                Some(b) => Json::UInt(b),
                None => Json::Null,
            },
        ),
        ("rows", Json::UInt(p.rows as u64)),
        ("cols", Json::UInt(p.cols as u64)),
        ("m", Json::UInt(p.m as u64)),
        ("matrix_fingerprint", Json::UInt(p.matrix_fingerprint)),
        ("next_rung", Json::UInt(p.next_rung as u64)),
        (
            "rungs",
            Json::Arr(p.rungs.iter().map(rung_to_json).collect()),
        ),
        (
            "trips",
            Json::Arr(p.trips.iter().map(|t| Json::UInt(u64::from(*t))).collect()),
        ),
        ("work_spent", Json::UInt(p.work_spent)),
    ])
}

/// Decodes a snapshot JSON document back into a [`SolveProgress`].
/// Every malformation maps to [`RectpartError::SnapshotCorrupt`];
/// semantic validation against the instance being resumed happens later
/// in [`rectpart_robust::SolverDriver::resume_from`].
pub fn progress_from_json(j: &Json) -> Result<SolveProgress, RectpartError> {
    let version = field_u64(j, "version")?;
    if version != PAYLOAD_VERSION {
        return Err(corrupt(format!(
            "snapshot payload version {version} is not the supported version {PAYLOAD_VERSION}"
        )));
    }
    let ladder = field_array(j, "ladder")?
        .iter()
        .map(|s| {
            s.as_str()
                .map(str::to_string)
                .ok_or_else(|| corrupt("ladder entry is not a string"))
        })
        .collect::<Result<Vec<String>, RectpartError>>()?;
    let budget = match j.field("budget").map_err(|e| corrupt(e.to_string()))? {
        Json::Null => None,
        other => Some(
            other
                .as_u64()
                .ok_or_else(|| corrupt("budget is neither null nor an unsigned integer"))?,
        ),
    };
    let rungs = field_array(j, "rungs")?
        .iter()
        .map(rung_from_json)
        .collect::<Result<Vec<RungReport>, RectpartError>>()?;
    let trips = field_array(j, "trips")?
        .iter()
        .map(|t| {
            t.as_u64()
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| corrupt("trip count is not a u32"))
        })
        .collect::<Result<Vec<u32>, RectpartError>>()?;
    Ok(SolveProgress {
        ladder,
        budget,
        rows: field_usize(j, "rows")?,
        cols: field_usize(j, "cols")?,
        m: field_usize(j, "m")?,
        matrix_fingerprint: field_u64(j, "matrix_fingerprint")?,
        next_rung: field_usize(j, "next_rung")?,
        rungs,
        trips,
        work_spent: field_u64(j, "work_spent")?,
    })
}

// ---------------------------------------------------------------------
// Snapshot text: payload + footer.
// ---------------------------------------------------------------------

/// Serializes a snapshot to its on-disk text: pretty JSON payload, a
/// trailing newline, then the checksum footer line.
pub fn snapshot_to_string(p: &SolveProgress) -> String {
    let mut payload = progress_to_json(p).to_string_pretty();
    payload.push('\n');
    let footer = format!(
        "{SNAPSHOT_MAGIC} len={} fnv={:016x}\n",
        payload.len(),
        fnv1a(payload.as_bytes())
    );
    payload.push_str(&footer);
    payload
}

/// Parses snapshot text, verifying the footer before touching the
/// payload: magic token, declared payload length (catches torn or
/// truncated writes) and FNV-1a checksum (catches bit corruption). Only
/// then is the payload parsed as JSON and decoded.
pub fn snapshot_from_str(text: &str) -> Result<SolveProgress, RectpartError> {
    let body = text.strip_suffix('\n').unwrap_or(text);
    let boundary = body
        .rfind('\n')
        .ok_or_else(|| corrupt("missing checksum footer line"))?;
    // `boundary` indexes an ASCII newline inside `body`, which is a
    // prefix of `text`, so both splits sit on char boundaries.
    let payload = text
        .get(..boundary + 1)
        .ok_or_else(|| corrupt("malformed footer boundary"))?;
    let footer = body
        .get(boundary + 1..)
        .ok_or_else(|| corrupt("malformed footer boundary"))?;

    let mut tokens = footer.split_whitespace();
    if tokens.next() != Some(SNAPSHOT_MAGIC) {
        return Err(corrupt(format!(
            "footer does not open with {SNAPSHOT_MAGIC} — not a snapshot, or a torn write"
        )));
    }
    let len: u64 = tokens
        .next()
        .and_then(|t| t.strip_prefix("len="))
        .ok_or_else(|| corrupt("footer missing len= field"))?
        .parse()
        .map_err(|_| corrupt("footer len= is not a number"))?;
    let fnv = u64::from_str_radix(
        tokens
            .next()
            .and_then(|t| t.strip_prefix("fnv="))
            .ok_or_else(|| corrupt("footer missing fnv= field"))?,
        16,
    )
    .map_err(|_| corrupt("footer fnv= is not hexadecimal"))?;

    if payload.len() as u64 != len {
        return Err(corrupt(format!(
            "torn snapshot: footer declares {len} payload bytes, found {}",
            payload.len()
        )));
    }
    let sum = fnv1a(payload.as_bytes());
    if sum != fnv {
        return Err(corrupt(format!(
            "checksum mismatch: footer fnv={fnv:016x}, payload hashes to {sum:016x}"
        )));
    }
    let json =
        rectpart_json::parse(payload).map_err(|e| corrupt(format!("malformed payload: {e}")))?;
    progress_from_json(&json)
}

// ---------------------------------------------------------------------
// File IO.
// ---------------------------------------------------------------------

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_else(|| "snapshot".into());
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes a snapshot atomically: serialize to a sibling `*.tmp` file,
/// then rename over `path`. Readers therefore only ever observe a
/// complete previous snapshot or a complete new one.
pub fn write_snapshot(path: &Path, progress: &SolveProgress) -> io::Result<()> {
    let text = snapshot_to_string(progress);
    let tmp = tmp_path(path);
    fs::write(&tmp, text.as_bytes())?;
    fs::rename(&tmp, path)
}

/// Reads and verifies a snapshot file. IO errors, torn writes, checksum
/// mismatches and malformed payloads all surface as
/// [`RectpartError::SnapshotCorrupt`].
pub fn load_snapshot(path: &Path) -> Result<SolveProgress, RectpartError> {
    let text = fs::read_to_string(path)
        .map_err(|e| corrupt(format!("cannot read snapshot {}: {e}", path.display())))?;
    snapshot_from_str(&text)
}

// ---------------------------------------------------------------------
// Checkpoint sinks.
// ---------------------------------------------------------------------

/// A [`CheckpointSink`] that persists snapshots to one file, at most
/// once per `interval` work units (forced checkpoints — the run's last
/// word before a cancellation unwind — are always written).
///
/// Write failures never panic or abort the solve: the sink records the
/// error ([`FileCheckpointer::last_error`]) and the run continues with
/// the previous on-disk snapshot intact.
#[derive(Debug)]
pub struct FileCheckpointer {
    path: PathBuf,
    interval: u64,
    last_written: Option<u64>,
    writes: u64,
    last_error: Option<String>,
}

impl FileCheckpointer {
    /// A checkpointer writing to `path` whenever at least `interval`
    /// work units elapsed since the last write (0 = every checkpoint).
    pub fn new(path: impl Into<PathBuf>, interval: u64) -> Self {
        FileCheckpointer {
            path: path.into(),
            interval,
            last_written: None,
            writes: 0,
            last_error: None,
        }
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Snapshots successfully written so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// The most recent write error, if any.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }
}

impl CheckpointSink for FileCheckpointer {
    fn on_checkpoint(&mut self, progress: &SolveProgress, force: bool) {
        let due = force
            || match self.last_written {
                None => true,
                Some(prev) => progress.work_spent.saturating_sub(prev) >= self.interval,
            };
        if !due {
            return;
        }
        let _span = rectpart_obs::span::enter(rectpart_obs::span::SpanKind::DriverSnapshot);
        match write_snapshot(&self.path, progress) {
            Ok(()) => {
                self.last_written = Some(progress.work_spent);
                self.writes += 1;
                rectpart_obs::incr(rectpart_obs::Counter::SnapshotWrites);
            }
            Err(e) => self.last_error = Some(e.to_string()),
        }
    }
}

/// A [`CheckpointSink`] that keeps every checkpoint in memory — the
/// test and campaign harness for simulating a crash after the k-th
/// checkpoint without touching the filesystem.
#[derive(Debug, Default)]
pub struct MemorySink {
    /// Every checkpoint observed, in order, with its `force` flag.
    pub checkpoints: Vec<(SolveProgress, bool)>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// The last forced checkpoint, if any (a cancelled run's final
    /// word).
    pub fn last_forced(&self) -> Option<&SolveProgress> {
        self.checkpoints
            .iter()
            .rev()
            .find(|(_, force)| *force)
            .map(|(p, _)| p)
    }
}

impl CheckpointSink for MemorySink {
    fn on_checkpoint(&mut self, progress: &SolveProgress, force: bool) {
        self.checkpoints.push((progress.clone(), force));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_progress() -> SolveProgress {
        SolveProgress {
            ladder: vec!["JAG-M-OPT-BEST".into(), "RECT-UNIFORM".into()],
            budget: Some(123_456),
            rows: 16,
            cols: 12,
            m: 6,
            matrix_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
            next_rung: 1,
            rungs: vec![RungReport {
                name: "JAG-M-OPT-BEST".into(),
                outcome: RungOutcome::Failed {
                    error: RectpartError::WorkerPanic {
                        rung: "JAG-M-OPT-BEST".into(),
                    },
                },
                work: 420,
                attempts: 2,
                spent_after: 613,
            }],
            trips: vec![2, 0],
            work_spent: 613,
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let p = sample_progress();
        let json = progress_to_json(&p);
        let back = progress_from_json(&json).unwrap();
        assert_eq!(back, p);
        // And through actual text.
        let reparsed = rectpart_json::parse(&json.to_string_pretty()).unwrap();
        assert_eq!(progress_from_json(&reparsed).unwrap(), p);
    }

    #[test]
    fn outcome_variants_round_trip() {
        let outcomes = vec![
            RungOutcome::Answered { lmax: 99 },
            RungOutcome::Failed {
                error: RectpartError::InvalidSolution(PartitionError::OutOfBounds {
                    index: 3,
                    rect: Rect {
                        r0: 1,
                        r1: 5,
                        c0: 2,
                        c1: 9,
                    },
                }),
            },
            RungOutcome::Failed {
                error: RectpartError::BudgetExhausted {
                    budget: 10,
                    spent: 11,
                },
            },
            RungOutcome::Failed {
                error: RectpartError::Cancelled,
            },
            RungOutcome::SkippedEstimate {
                estimate: 1000,
                remaining: 10,
            },
            RungOutcome::CircuitOpen { trips: 3 },
            RungOutcome::NotReached,
        ];
        for o in outcomes {
            let back = outcome_from_json(&outcome_to_json(&o)).unwrap();
            assert_eq!(back, o);
        }
    }

    #[test]
    fn snapshot_text_round_trips() {
        let p = sample_progress();
        let text = snapshot_to_string(&p);
        assert!(text.ends_with('\n'));
        assert_eq!(snapshot_from_str(&text).unwrap(), p);
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let text = snapshot_to_string(&sample_progress());
        // Every strict prefix must be rejected — except the one missing
        // only the final newline, which is byte-complete (the footer
        // and the 570-odd checksummed payload bytes are all present).
        for cut in 0..text.len() - 1 {
            let torn = &text[..cut];
            assert!(
                snapshot_from_str(torn).is_err(),
                "torn prefix of {cut} bytes must not load"
            );
        }
    }

    #[test]
    fn single_byte_corruption_is_detected() {
        let p = sample_progress();
        let text = snapshot_to_string(&p);
        let bytes = text.as_bytes();
        // Flip one payload byte (stay ASCII so the file is still UTF-8).
        for at in [0usize, bytes.len() / 3, bytes.len() / 2] {
            let mut evil = bytes.to_vec();
            evil[at] ^= 0x01;
            let evil = String::from_utf8(evil).unwrap();
            let got = snapshot_from_str(&evil);
            assert!(
                got.is_err(),
                "corrupting byte {at} must be detected, got {got:?}"
            );
        }
    }

    #[test]
    fn missing_footer_is_rejected() {
        let p = sample_progress();
        let payload = progress_to_json(&p).to_string_pretty();
        let err = snapshot_from_str(&payload).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("snapshot unusable"), "{msg}");
    }

    #[test]
    fn file_round_trip_and_atomic_write() {
        let dir = std::env::temp_dir().join(format!("rectpart-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.snapshot");
        let p = sample_progress();
        write_snapshot(&path, &p).unwrap();
        assert_eq!(load_snapshot(&path).unwrap(), p);
        // No tmp residue after a successful write.
        assert!(!tmp_path(&path).exists());
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn interval_sink_downsamples_but_force_always_writes() {
        let dir = std::env::temp_dir().join(format!("rectpart-snap-int-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("interval.snapshot");
        let mut sink = FileCheckpointer::new(&path, 1000);
        let mut p = sample_progress();
        p.work_spent = 0;
        sink.on_checkpoint(&p, false); // first is always due
        p.work_spent = 10;
        sink.on_checkpoint(&p, false); // 10 < 1000: skipped
        assert_eq!(sink.writes(), 1);
        p.work_spent = 20;
        sink.on_checkpoint(&p, true); // forced: written regardless
        assert_eq!(sink.writes(), 2);
        assert_eq!(load_snapshot(&path).unwrap().work_spent, 20);
        assert_eq!(sink.last_error(), None);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir(&dir);
    }
}
