//! Deterministic fault-injection campaign over the snapshot/resume
//! stack (feature `faultinject`).
//!
//! Each [`FaultKind`] is one reproducible failure scenario: a crash
//! after the k-th checkpoint, a torn or bit-corrupted snapshot file, a
//! snapshot replayed against the wrong instance (cache poisoning), a
//! rung that panics on every retry until its circuit breaker opens, and
//! a cooperative mid-rung cancellation. [`run_case`] executes one
//! scenario at a given thread count and verifies the invariant the
//! scenario attacks — resumed runs are bit-identical to uninterrupted
//! ones, and damaged snapshots are always rejected, never loaded.
//!
//! The campaign mutates process-global state (the fault plan, the
//! cancellation deadline), so cases must not run concurrently; the
//! `rectpart-soak` binary replays [`CAMPAIGN`] serially and the test
//! suite serializes on a mutex.

use std::fmt;
use std::fs;
use std::path::Path;

use rectpart_core::{LoadMatrix, RectpartError};
use rectpart_parallel::with_threads;
use rectpart_robust::{FaultPlan, RetryPolicy, RungOutcome, SolveOutcome, SolverDriver};

use crate::snapshot::{load_snapshot, snapshot_from_str, write_snapshot, FileCheckpointer};
use crate::MemorySink;

/// One scenario of the fault campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The process dies right after the k-th rung-boundary checkpoint
    /// was durably written; a fresh process resumes from it.
    CrashAtCheckpoint(usize),
    /// A cooperative cancellation lands mid-rung; the forced snapshot
    /// is reloaded and the solve resumed.
    CancelMidRung,
    /// The snapshot file is truncated (torn write); loading must fail.
    TornSnapshot,
    /// One payload byte is flipped under an intact footer; loading must
    /// fail on the checksum.
    ChecksumCorruption,
    /// A valid snapshot is replayed against a different instance or
    /// part count (stale cache / cache poisoning); resume must refuse.
    StaleSnapshot,
    /// A rung panics on every attempt until its circuit breaker opens;
    /// the run, its retries and a crash/resume across the open breaker
    /// must all be deterministic.
    RepeatedRungPanics,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::CrashAtCheckpoint(k) => write!(f, "crash-at-checkpoint-{k}"),
            FaultKind::CancelMidRung => write!(f, "cancel-mid-rung"),
            FaultKind::TornSnapshot => write!(f, "torn-snapshot"),
            FaultKind::ChecksumCorruption => write!(f, "checksum-corruption"),
            FaultKind::StaleSnapshot => write!(f, "stale-snapshot"),
            FaultKind::RepeatedRungPanics => write!(f, "repeated-rung-panics"),
        }
    }
}

/// The full campaign matrix, replayed by the `rectpart-soak` binary at
/// several thread counts.
pub const CAMPAIGN: &[FaultKind] = &[
    FaultKind::CrashAtCheckpoint(0),
    FaultKind::CrashAtCheckpoint(1),
    FaultKind::CrashAtCheckpoint(2),
    FaultKind::CancelMidRung,
    FaultKind::TornSnapshot,
    FaultKind::ChecksumCorruption,
    FaultKind::StaleSnapshot,
    FaultKind::RepeatedRungPanics,
];

/// The campaign's fixed instance: big enough that every default-ladder
/// rung does real work, small enough to replay the whole matrix in CI.
pub fn campaign_matrix() -> LoadMatrix {
    LoadMatrix::from_fn(24, 18, |r, c| ((r * 31 + c * 17) % 97 + 1) as u32)
}

/// Part count used by every campaign case.
pub const CAMPAIGN_PARTS: usize = 6;

fn ensure(cond: bool, msg: impl Into<String>) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg.into())
    }
}

fn solved(
    label: &str,
    out: Result<SolveOutcome, rectpart_robust::DriverFailure>,
) -> Result<SolveOutcome, String> {
    out.map_err(|f| format!("{label} unexpectedly failed: {f}"))
}

/// Runs one campaign case at `threads` worker threads, writing any
/// snapshot artifacts under `dir` (kept on failure for post-mortem).
/// Returns a one-line pass note, or a diagnostic on violation.
///
/// Installs and clears the process-global fault plan and cancellation
/// deadline; callers must serialize invocations.
pub fn run_case(kind: FaultKind, threads: usize, dir: &Path) -> Result<String, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    FaultPlan::clear();
    rectpart_obs::cancel::disarm();
    let result = run_case_inner(kind, threads, dir);
    // Never leak global state into the next case, pass or fail.
    FaultPlan::clear();
    rectpart_obs::cancel::disarm();
    result
}

fn run_case_inner(kind: FaultKind, threads: usize, dir: &Path) -> Result<String, String> {
    match kind {
        FaultKind::CrashAtCheckpoint(k) => crash_at_checkpoint(k, threads, dir),
        FaultKind::CancelMidRung => cancel_mid_rung(threads, dir),
        FaultKind::TornSnapshot => torn_snapshot(threads, dir),
        FaultKind::ChecksumCorruption => checksum_corruption(threads, dir),
        FaultKind::StaleSnapshot => stale_snapshot(threads, dir),
        FaultKind::RepeatedRungPanics => repeated_rung_panics(threads, dir),
    }
}

/// Crash simulation: rungs 0 and 1 panic (single attempt), so the
/// default ladder walks all three rungs and emits a checkpoint at each
/// boundary. The k-th checkpoint is written to disk, "the process
/// dies", and a fresh driver resumes from the reloaded file. The
/// combined run must equal the uninterrupted one bit for bit.
fn crash_at_checkpoint(k: usize, threads: usize, dir: &Path) -> Result<String, String> {
    let matrix = campaign_matrix();
    let m = CAMPAIGN_PARTS;
    let driver = SolverDriver::new();
    let plan = FaultPlan::new().panic_rung(0).panic_rung(1);

    plan.install();
    let clean = solved(
        "clean run",
        with_threads(threads, || driver.try_solve(&matrix, m)),
    )?;
    let mut sink = MemorySink::new();
    let watched = solved(
        "checkpointed run",
        with_threads(threads, || {
            driver.try_solve_checkpointed(&matrix, m, &mut sink)
        }),
    )?;
    ensure(
        watched == clean,
        "checkpointing changed the solve outcome".to_string(),
    )?;
    ensure(
        sink.checkpoints.len() == driver.ladder().len(),
        format!(
            "expected one checkpoint per rung boundary, got {}",
            sink.checkpoints.len()
        ),
    )?;
    let (progress, _) = sink
        .checkpoints
        .get(k)
        .ok_or_else(|| format!("no checkpoint {k} captured"))?;

    let path = dir.join(format!("crash_at_{k}_t{threads}.snapshot"));
    write_snapshot(&path, progress).map_err(|e| format!("snapshot write failed: {e}"))?;
    let reloaded = load_snapshot(&path).map_err(|e| format!("snapshot reload failed: {e}"))?;
    ensure(
        &reloaded == progress,
        "snapshot round-trip altered the progress".to_string(),
    )?;

    // The fault plan is still installed: the resumed run must re-fail
    // any injected rungs after the crash point exactly as the original.
    let resumed = solved(
        "resumed run",
        with_threads(threads, || driver.resume_from(&reloaded, &matrix, m)),
    )?;
    FaultPlan::clear();
    ensure(
        resumed == clean,
        format!(
            "resume from checkpoint {k} diverged\nclean:\n{}\nresumed:\n{}",
            clean.report, resumed.report
        ),
    )?;
    Ok(format!(
        "resume from checkpoint {k} bit-identical ({} rungs)",
        clean.report.rungs.len()
    ))
}

/// A cancellation deadline armed to land inside the first rung: the
/// driver unwinds with `Cancelled`, force-writing a snapshot first. The
/// reloaded snapshot warm-starts to the uninterrupted outcome.
fn cancel_mid_rung(threads: usize, dir: &Path) -> Result<String, String> {
    let matrix = campaign_matrix();
    let m = CAMPAIGN_PARTS;
    let driver = SolverDriver::new().with_ladder(["JAG-M-OPT-BEST", "RECT-UNIFORM"]);

    let clean = solved(
        "clean run",
        with_threads(threads, || driver.try_solve(&matrix, m)),
    )?;
    let rung_work: u64 = clean.report.rungs.iter().map(|r| r.work).sum();
    let pre_rung_work = clean.report.total_work.saturating_sub(rung_work);

    let path = dir.join(format!("cancel_t{threads}.snapshot"));
    let mut sink = FileCheckpointer::new(&path, 0);
    // Deadline one unit past the Γ build: the first in-rung work-meter
    // poll observes it.
    rectpart_obs::cancel::arm_at(
        rectpart_obs::work::spent()
            .saturating_add(pre_rung_work)
            .saturating_add(1),
    );
    let interrupted = with_threads(threads, || {
        driver.try_solve_checkpointed(&matrix, m, &mut sink)
    });
    rectpart_obs::cancel::disarm();
    match interrupted {
        Err(failure) => ensure(
            failure.error == RectpartError::Cancelled,
            format!("expected Cancelled, got {}", failure.error),
        )?,
        Ok(_) => return Err("armed deadline did not cancel the solve".to_string()),
    }
    ensure(sink.writes() >= 1, "no snapshot written".to_string())?;
    ensure(
        sink.last_error().is_none(),
        format!("snapshot write error: {:?}", sink.last_error()),
    )?;

    let progress = load_snapshot(&path).map_err(|e| format!("snapshot reload failed: {e}"))?;
    let resumed = solved(
        "resumed run",
        with_threads(threads, || driver.resume_from(&progress, &matrix, m)),
    )?;
    ensure(
        resumed == clean,
        format!(
            "resume after cancellation diverged\nclean:\n{}\nresumed:\n{}",
            clean.report, resumed.report
        ),
    )?;
    Ok("cancelled mid-rung, resumed bit-identical".to_string())
}

fn fresh_progress(threads: usize) -> Result<rectpart_robust::SolveProgress, String> {
    let matrix = campaign_matrix();
    let driver = SolverDriver::new();
    let mut sink = MemorySink::new();
    solved(
        "snapshot-producing run",
        with_threads(threads, || {
            driver.try_solve_checkpointed(&matrix, CAMPAIGN_PARTS, &mut sink)
        }),
    )?;
    sink.checkpoints
        .first()
        .map(|(p, _)| p.clone())
        .ok_or_else(|| "no checkpoint captured".to_string())
}

/// Every proper prefix of a snapshot file must fail to load: the footer
/// is the last line, so a torn write loses it (or truncates the
/// payload it describes).
fn torn_snapshot(threads: usize, dir: &Path) -> Result<String, String> {
    let progress = fresh_progress(threads)?;
    let path = dir.join(format!("torn_t{threads}.snapshot"));
    write_snapshot(&path, &progress).map_err(|e| format!("snapshot write failed: {e}"))?;
    let text = fs::read_to_string(&path).map_err(|e| format!("cannot read back snapshot: {e}"))?;

    // Stop one byte short: the prefix missing only the final newline is
    // byte-complete (payload and footer intact) and loads legitimately.
    let full_content = text.len().saturating_sub(1);
    let mut checked = 0usize;
    let mut cut = 0usize;
    while cut < full_content {
        if let Some(torn) = text.get(..cut) {
            // Valid UTF-8 boundary: this prefix is what a torn write
            // could leave behind.
            match snapshot_from_str(torn) {
                Err(RectpartError::SnapshotCorrupt { .. }) => checked += 1,
                Err(other) => {
                    return Err(format!(
                        "torn prefix of {cut} bytes gave non-snapshot error {other}"
                    ))
                }
                Ok(_) => {
                    let torn_path = dir.join(format!("torn_t{threads}_cut{cut}.snapshot"));
                    let _ = fs::write(&torn_path, torn);
                    return Err(format!(
                        "torn prefix of {cut}/{} bytes loaded successfully (kept as {})",
                        text.len(),
                        torn_path.display()
                    ));
                }
            }
        }
        cut += 1;
    }
    Ok(format!("all {checked} torn prefixes rejected"))
}

/// Flipping any single payload byte under an intact footer must be
/// caught by the FNV-1a checksum.
fn checksum_corruption(threads: usize, dir: &Path) -> Result<String, String> {
    let progress = fresh_progress(threads)?;
    let path = dir.join(format!("flip_t{threads}.snapshot"));
    write_snapshot(&path, &progress).map_err(|e| format!("snapshot write failed: {e}"))?;
    let text = fs::read_to_string(&path).map_err(|e| format!("cannot read back snapshot: {e}"))?;

    let payload_len = text
        .rfind(crate::SNAPSHOT_MAGIC)
        .ok_or_else(|| "written snapshot has no footer".to_string())?;
    let mut flipped = 0usize;
    let mut at = 0usize;
    while at < payload_len {
        let mut evil = text.as_bytes().to_vec();
        if let Some(b) = evil.get_mut(at) {
            // Flip the low bit but stay ASCII, so the file is still
            // valid UTF-8 and reaches the checksum check.
            *b ^= 0x01;
        }
        let evil =
            String::from_utf8(evil).map_err(|_| format!("flip at byte {at} produced non-UTF-8"))?;
        match snapshot_from_str(&evil) {
            Err(RectpartError::SnapshotCorrupt { .. }) => flipped += 1,
            Err(other) => return Err(format!("flip at byte {at} gave non-snapshot error {other}")),
            Ok(_) => {
                let evil_path = dir.join(format!("flip_t{threads}_at{at}.snapshot"));
                let _ = fs::write(&evil_path, &evil);
                return Err(format!(
                    "flipped byte {at} loaded successfully (kept as {})",
                    evil_path.display()
                ));
            }
        }
        // Every 7th byte keeps the case fast while still sweeping the
        // whole payload across campaign runs at different offsets.
        at += 7;
    }
    Ok(format!("{flipped} single-byte corruptions rejected"))
}

/// A snapshot of instance A replayed against instance B (or a different
/// part count) is poisoned state: resume must refuse it.
fn stale_snapshot(threads: usize, dir: &Path) -> Result<String, String> {
    let progress = fresh_progress(threads)?;
    let path = dir.join(format!("stale_t{threads}.snapshot"));
    write_snapshot(&path, &progress).map_err(|e| format!("snapshot write failed: {e}"))?;
    let reloaded = load_snapshot(&path).map_err(|e| format!("snapshot reload failed: {e}"))?;

    let driver = SolverDriver::new();
    // Same shape, different loads: only the fingerprint can tell.
    let poisoned = LoadMatrix::from_fn(24, 18, |r, c| ((r * 13 + c * 29) % 89 + 1) as u32);
    match with_threads(threads, || {
        driver.resume_from(&reloaded, &poisoned, CAMPAIGN_PARTS)
    }) {
        Ok(_) => return Err("resume accepted a snapshot of a different matrix".to_string()),
        Err(failure) => ensure(
            matches!(failure.error, RectpartError::SnapshotCorrupt { .. }),
            format!(
                "wrong-matrix resume gave {}, not SnapshotCorrupt",
                failure.error
            ),
        )?,
    }
    // Same matrix, wrong part count.
    let matrix = campaign_matrix();
    match with_threads(threads, || {
        driver.resume_from(&reloaded, &matrix, CAMPAIGN_PARTS + 1)
    }) {
        Ok(_) => return Err("resume accepted a snapshot with the wrong part count".to_string()),
        Err(failure) => ensure(
            matches!(failure.error, RectpartError::SnapshotCorrupt { .. }),
            format!("wrong-m resume gave {}, not SnapshotCorrupt", failure.error),
        )?,
    }
    Ok("stale snapshots refused on fingerprint and part count".to_string())
}

/// A rung that panics on every attempt must retry with deterministic
/// backoff, open its circuit breaker at the configured trip count, and
/// demote — identically on every run and across a crash/resume.
fn repeated_rung_panics(threads: usize, dir: &Path) -> Result<String, String> {
    let matrix = campaign_matrix();
    let m = CAMPAIGN_PARTS;
    let driver = SolverDriver::new().with_retry(RetryPolicy::retries(5, 3));
    let plan = FaultPlan::new().panic_rung(0);

    plan.install();
    let first = solved(
        "breaker run",
        with_threads(threads, || driver.try_solve(&matrix, m)),
    )?;
    let again = solved(
        "repeat breaker run",
        with_threads(threads, || driver.try_solve(&matrix, m)),
    )?;
    ensure(
        first == again,
        "retry/breaker run is not deterministic".to_string(),
    )?;
    let rung0 = first
        .report
        .rungs
        .first()
        .ok_or_else(|| "empty rung report".to_string())?;
    ensure(
        rung0.outcome == RungOutcome::CircuitOpen { trips: 3 },
        format!(
            "rung 0 outcome is {:?}, expected CircuitOpen(3)",
            rung0.outcome
        ),
    )?;
    ensure(
        rung0.attempts == 3,
        format!("rung 0 ran {} attempts, expected 3", rung0.attempts),
    )?;
    ensure(
        first.report.answered_by.as_deref() == Some("JAG-M-HEUR-BEST"),
        format!(
            "answered by {:?}, expected the demoted rung",
            first.report.answered_by
        ),
    )?;

    // Crash after the breaker opened (checkpoint at the rung-1
    // boundary carries trips = [3, 0, 0]) and resume: the open breaker
    // must survive the snapshot.
    let mut sink = MemorySink::new();
    let watched = solved(
        "checkpointed breaker run",
        with_threads(threads, || {
            driver.try_solve_checkpointed(&matrix, m, &mut sink)
        }),
    )?;
    ensure(
        watched == first,
        "checkpointing changed the outcome".to_string(),
    )?;
    let (boundary, _) = sink
        .checkpoints
        .get(1)
        .ok_or_else(|| "no rung-1 boundary checkpoint".to_string())?;
    ensure(
        boundary.trips.first().copied() == Some(3),
        format!(
            "snapshot trips {:?} do not record the open breaker",
            boundary.trips
        ),
    )?;
    let path = dir.join(format!("breaker_t{threads}.snapshot"));
    write_snapshot(&path, boundary).map_err(|e| format!("snapshot write failed: {e}"))?;
    let reloaded = load_snapshot(&path).map_err(|e| format!("snapshot reload failed: {e}"))?;
    let resumed = solved(
        "resumed breaker run",
        with_threads(threads, || driver.resume_from(&reloaded, &matrix, m)),
    )?;
    FaultPlan::clear();
    ensure(
        resumed == first,
        format!(
            "resume across the open breaker diverged\nclean:\n{}\nresumed:\n{}",
            first.report, resumed.report
        ),
    )?;
    Ok("breaker opened at 3 trips, deterministic, survives resume".to_string())
}
