//! `rectpart-soak` — replays the snapshot/resume fault campaign.
//!
//! Usage: `rectpart-soak [ARTIFACT_DIR]`
//!
//! Runs every [`rectpart_resume::campaign::CAMPAIGN`] case at each
//! configured thread count, serially (the campaign mutates the
//! process-global fault plan and cancellation deadline). On success the
//! artifact directory is removed; on failure it is kept — including
//! the snapshot file of every failing case — and the process exits 1
//! so CI can upload the directory.

use std::path::PathBuf;
use std::process::ExitCode;

use rectpart_resume::campaign::{run_case, CAMPAIGN};

/// Thread counts the campaign is replayed at: the serial baseline and
/// an oversubscribed pool, bracketing the determinism claim.
const THREAD_COUNTS: [usize; 2] = [1, 4];

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("rectpart-soak-{}", std::process::id()))
        });

    let mut passed = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for &threads in &THREAD_COUNTS {
        for &kind in CAMPAIGN {
            let case_dir = dir.join(format!("t{threads}"));
            match run_case(kind, threads, &case_dir) {
                Ok(note) => {
                    println!("PASS [{threads} thread(s)] {kind}: {note}");
                    passed += 1;
                }
                Err(diag) => {
                    println!("FAIL [{threads} thread(s)] {kind}: {diag}");
                    failures.push(format!("[{threads} thread(s)] {kind}"));
                }
            }
        }
    }

    println!("\nsoak: {passed}/{} cases passed", passed + failures.len());
    if failures.is_empty() {
        let _ = std::fs::remove_dir_all(&dir);
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            println!("  failed: {f}");
        }
        println!("artifacts kept in {}", dir.display());
        ExitCode::FAILURE
    }
}
