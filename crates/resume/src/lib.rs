//! Crash recovery for the rectpart solver driver.
//!
//! `rectpart-robust` already degrades gracefully *within* one process:
//! panicking rungs demote, budgets bound work, retries back off and
//! circuit breakers give up on rungs that keep failing. This crate
//! extends that story *across* processes:
//!
//! * **Snapshots** — the driver's [`SolveProgress`] checkpoints are
//!   serialized through `rectpart-json` and written atomically with a
//!   length+FNV-1a checksum footer, so a torn or corrupted file is
//!   always detected ([`RectpartError::SnapshotCorrupt`]), never
//!   silently loaded.
//! * **Checkpointing** — [`FileCheckpointer`] persists snapshots at a
//!   configurable work-unit interval (plus every forced cancellation
//!   checkpoint) with no effect on the solve's determinism: snapshots
//!   are derived from the driver's work ledger, not from wall clock.
//! * **Resume** — [`load_snapshot`] +
//!   [`SolverDriver::resume_from`](rectpart_robust::SolverDriver::resume_from)
//!   warm-start an interrupted solve; the combined run's outcome and
//!   [`DegradationReport`](rectpart_robust::DegradationReport) are
//!   bit-identical to an uninterrupted run at any thread count.
//! * **Fault campaign** — with the default-off `faultinject` feature,
//!   [`campaign`] replays a deterministic matrix of crash/corruption
//!   scenarios (crash at checkpoint *k*, torn snapshot, checksum
//!   corruption, stale snapshot, repeated rung panics, mid-rung
//!   cancellation); the `rectpart-soak` binary runs it end to end.
//!
//! ```
//! use rectpart_core::LoadMatrix;
//! use rectpart_resume::{load_snapshot, write_snapshot, MemorySink};
//! use rectpart_robust::SolverDriver;
//!
//! let matrix = LoadMatrix::from_fn(8, 8, |r, c| (r * c) as u32);
//! let driver = SolverDriver::new();
//! let mut sink = MemorySink::new();
//! let clean = driver.try_solve_checkpointed(&matrix, 4, &mut sink).unwrap();
//!
//! // Persist the first rung-boundary checkpoint, reload it, resume.
//! let dir = std::env::temp_dir().join(format!("rectpart-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("doc.snapshot");
//! write_snapshot(&path, &sink.checkpoints[0].0).unwrap();
//! let progress = load_snapshot(&path).unwrap();
//! let resumed = driver.resume_from(&progress, &matrix, 4).unwrap();
//! assert_eq!(resumed, clean);
//! # std::fs::remove_file(&path).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "faultinject")]
pub mod campaign;
mod snapshot;

pub use snapshot::{
    fnv1a, load_snapshot, progress_from_json, progress_to_json, snapshot_from_str,
    snapshot_to_string, write_snapshot, FileCheckpointer, MemorySink, SNAPSHOT_MAGIC,
};

// Re-export the driver-side half of the protocol so `rectpart::resume`
// is self-contained for callers.
pub use rectpart_core::RectpartError;
pub use rectpart_robust::{CheckpointSink, SolveProgress};
