//! Dynamic-application driver: repartitioning a load time series.
//!
//! The PIC-MAG application's load evolves as particles move; the paper
//! partitions every 500-iteration snapshot independently (figures 8, 11,
//! 12). This driver reproduces that loop and adds the migration-cost
//! accounting the paper leaves as future work: either repartition at
//! every snapshot, or only when the *current* partition's imbalance
//! drifts past a threshold (a common production policy, exposed here as
//! an extension experiment).

use rectpart_core::{LoadMatrix, Partition, Partitioner, PrefixSum2D};

use crate::model::{migration, CommModel, Simulator};

/// When to compute a fresh partition along the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RebalancePolicy {
    /// Repartition at every snapshot (the paper's setting).
    EverySnapshot,
    /// Keep the previous partition while its imbalance on the *current*
    /// load stays at or below the threshold.
    Threshold(f64),
}

/// Per-snapshot outcome of a dynamic run.
#[derive(Clone, Debug)]
pub struct DynamicStats {
    /// Snapshot index (0-based).
    pub step: usize,
    /// Load imbalance of the active partition on this snapshot's load.
    pub imbalance: f64,
    /// BSP makespan of the active partition on this snapshot.
    pub makespan: f64,
    /// Parallel speedup at this snapshot.
    pub speedup: f64,
    /// Whether a fresh partition was computed at this snapshot.
    pub repartitioned: bool,
    /// Cells that changed owner relative to the previous active
    /// partition (0 on the first snapshot or when not repartitioned).
    pub migration_cells: u64,
    /// Load (on the new snapshot) carried by migrated cells.
    pub migration_load: u64,
}

/// Runs `algo` over a load time series under the given policy and cost
/// model, returning one [`DynamicStats`] per snapshot.
pub fn dynamic_run<P: Partitioner + ?Sized>(
    trace: &[LoadMatrix],
    algo: &P,
    m: usize,
    model: &CommModel,
    policy: RebalancePolicy,
) -> Vec<DynamicStats> {
    let sim = Simulator::new(*model);
    let mut stats = Vec::with_capacity(trace.len());
    let mut active: Option<Partition> = None;
    for (step, matrix) in trace.iter().enumerate() {
        let pfx = PrefixSum2D::try_new(matrix).expect("snapshot total load overflows u64");
        let (partition, repartitioned, mig) = match (&active, policy) {
            (Some(prev), RebalancePolicy::Threshold(t)) if prev.load_imbalance(&pfx) <= t => {
                (prev.clone(), false, Default::default())
            }
            (prev, _) => {
                let fresh = algo.partition(&pfx, m);
                let mig = prev
                    .as_ref()
                    .map(|p| migration(&pfx, p, &fresh))
                    .unwrap_or_default();
                (fresh, true, mig)
            }
        };
        let report = sim.evaluate(&pfx, &partition);
        stats.push(DynamicStats {
            step,
            imbalance: partition.load_imbalance(&pfx),
            makespan: report.makespan,
            speedup: report.speedup,
            repartitioned,
            migration_cells: mig.cells,
            migration_load: mig.load,
        });
        active = Some(partition);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rectpart_core::{HierRb, JagMHeur};

    /// A drifting peak: load concentrates at a column that moves right
    /// over time.
    fn drifting_trace(steps: usize, n: usize) -> Vec<LoadMatrix> {
        (0..steps)
            .map(|t| {
                let hot = (t * n) / steps;
                LoadMatrix::from_fn(n, n, |_, c| 1 + if c == hot { 100 } else { 0 })
            })
            .collect()
    }

    #[test]
    fn every_snapshot_repartitions_every_time() {
        let trace = drifting_trace(5, 16);
        let stats = dynamic_run(
            &trace,
            &JagMHeur::best(),
            4,
            &CommModel::default(),
            RebalancePolicy::EverySnapshot,
        );
        assert_eq!(stats.len(), 5);
        assert!(stats.iter().all(|s| s.repartitioned));
        assert_eq!(stats[0].migration_cells, 0, "no predecessor at step 0");
        assert!(
            stats[1..].iter().any(|s| s.migration_cells > 0),
            "a drifting peak must move cells"
        );
    }

    #[test]
    fn threshold_policy_skips_stable_steps() {
        // A static trace: after the first partition nothing drifts, so a
        // threshold policy never repartitions again.
        let matrix = LoadMatrix::from_fn(16, 16, |r, c| ((r * c) % 5) as u32 + 1);
        let trace = vec![matrix.clone(), matrix.clone(), matrix];
        let stats = dynamic_run(
            &trace,
            &HierRb::load(),
            4,
            &CommModel::default(),
            RebalancePolicy::Threshold(0.5),
        );
        assert!(stats[0].repartitioned);
        assert!(!stats[1].repartitioned && !stats[2].repartitioned);
        assert_eq!(stats[1].migration_cells, 0);
    }

    #[test]
    fn threshold_policy_reacts_to_drift() {
        let trace = drifting_trace(6, 16);
        let stats = dynamic_run(
            &trace,
            &JagMHeur::best(),
            4,
            &CommModel::default(),
            RebalancePolicy::Threshold(0.05),
        );
        assert!(stats[0].repartitioned);
        assert!(
            stats[1..].iter().any(|s| s.repartitioned),
            "tight threshold must trigger on a drifting peak"
        );
    }

    #[test]
    fn imbalance_matches_partition_metric() {
        let trace = drifting_trace(2, 12);
        let stats = dynamic_run(
            &trace,
            &HierRb::load(),
            3,
            &CommModel::default(),
            RebalancePolicy::EverySnapshot,
        );
        for s in &stats {
            assert!(s.imbalance >= 0.0);
            assert!(s.speedup > 0.0 && s.speedup <= 3.0 + 1e-9);
        }
    }
}
