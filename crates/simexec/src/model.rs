//! The per-iteration cost model and migration accounting.

use rectpart_core::{Partition, PrefixSum2D};

/// Cost coefficients of one BSP iteration.
///
/// With a 5-point (4-neighbourhood) stencil, a processor owning rectangle
/// `r` must receive one ghost cell per boundary cell shared with each
/// edge-adjacent neighbour. Rectangles make this exactly
/// [`rectpart_core::Rect::shared_boundary`] — the implicit
/// communication-minimizing property the paper's introduction credits
/// rectangles with.
#[derive(Clone, Copy, Debug)]
pub struct CommModel {
    /// Time per unit of computational load.
    pub alpha: f64,
    /// Time per halo cell sent/received.
    pub beta: f64,
    /// Fixed per-neighbour message latency.
    pub latency: f64,
}

impl Default for CommModel {
    fn default() -> Self {
        // β/α = 20: one ghost-cell exchange costs ~20 cell updates, a
        // typical stencil-code ratio; latency worth ~200 updates.
        Self {
            alpha: 1.0,
            beta: 20.0,
            latency: 200.0,
        }
    }
}

/// Outcome of evaluating one partition under a [`CommModel`].
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// Wall time of one BSP iteration (slowest processor).
    pub makespan: f64,
    /// Compute part of the makespan (α · Lmax).
    pub compute_time: f64,
    /// Total halo cells exchanged per iteration, counted once per
    /// directed send.
    pub comm_volume_total: u64,
    /// Largest per-processor halo volume.
    pub comm_volume_max: u64,
    /// Largest per-processor neighbour count.
    pub max_neighbors: usize,
    /// Serial time / makespan.
    pub speedup: f64,
    /// Speedup / processor count.
    pub efficiency: f64,
}

/// Evaluates partitions under a fixed cost model, optionally with
/// heterogeneous processor speeds (the constant-performance-model setting
/// of Lastovetsky & Dongarra that the paper's related work discusses:
/// with heterogeneous processors, compute time is load divided by the
/// owner's speed).
///
/// ```
/// use rectpart_core::{HierRb, LoadMatrix, Partitioner, PrefixSum2D};
/// use rectpart_simexec::{CommModel, Simulator};
///
/// let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(32, 32, |_, _| 5));
/// let part = HierRb::load().partition(&pfx, 16);
/// let report = Simulator::new(CommModel::default()).evaluate(&pfx, &part);
/// assert!(report.speedup > 1.0 && report.speedup <= 16.0);
/// assert!(report.comm_volume_total > 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Simulator {
    model: CommModel,
    speeds: Option<Vec<f64>>,
}

impl Simulator {
    /// Creates a simulator with the given coefficients and homogeneous
    /// (unit-speed) processors.
    pub fn new(model: CommModel) -> Self {
        Self {
            model,
            speeds: None,
        }
    }

    /// Per-processor relative speeds; processor `p`'s compute time is
    /// `α·load_p / speeds[p]`. Lengths must match the evaluated
    /// partitions' processor counts.
    ///
    /// # Panics
    ///
    /// Panics if any speed is not strictly positive.
    pub fn with_speeds(model: CommModel, speeds: Vec<f64>) -> Self {
        assert!(
            speeds.iter().all(|&s| s > 0.0),
            "processor speeds must be positive"
        );
        Self {
            model,
            speeds: Some(speeds),
        }
    }

    /// The cost model in use.
    pub fn model(&self) -> &CommModel {
        &self.model
    }

    /// Simulates one BSP iteration of `part` over the load in `pfx`.
    ///
    /// # Panics
    ///
    /// Panics if heterogeneous speeds were configured with a different
    /// processor count than `part`.
    pub fn evaluate(&self, pfx: &PrefixSum2D, part: &Partition) -> ExecutionReport {
        let rects = part.rects();
        let m = rects.len();
        if let Some(speeds) = &self.speeds {
            assert_eq!(
                speeds.len(),
                m,
                "speed vector length must match processor count"
            );
        }
        // Per-processor halo volume and neighbour count: O(m²) pairwise
        // shared-boundary scan, parallelized over processors.
        let per_proc: Vec<(u64, usize, f64)> = rectpart_parallel::map_range(rects.len(), |i| {
            let r = &rects[i];
            let mut volume = 0u64;
            let mut neighbors = 0usize;
            if !r.is_empty() {
                for (j, other) in rects.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let shared = r.shared_boundary(other) as u64;
                    if shared > 0 {
                        volume += shared;
                        neighbors += 1;
                    }
                }
            }
            let speed = self.speeds.as_ref().map_or(1.0, |s| s[i]);
            let time = self.model.alpha * pfx.load(r) as f64 / speed
                + self.model.beta * volume as f64
                + self.model.latency * neighbors as f64;
            (volume, neighbors, time)
        });
        let comm_volume_total: u64 = per_proc.iter().map(|p| p.0).sum();
        let comm_volume_max = per_proc.iter().map(|p| p.0).max().unwrap_or(0);
        let max_neighbors = per_proc.iter().map(|p| p.1).max().unwrap_or(0);
        let makespan = per_proc.iter().map(|p| p.2).fold(0.0, f64::max);
        let compute_time = self.model.alpha * part.lmax(pfx) as f64;
        // Serial reference: the fastest single processor does all work.
        let best_speed = self
            .speeds
            .as_ref()
            .map_or(1.0, |s| s.iter().cloned().fold(0.0, f64::max));
        let serial = self.model.alpha * pfx.total() as f64 / best_speed;
        let speedup = if makespan > 0.0 {
            serial / makespan
        } else {
            m as f64
        };
        ExecutionReport {
            makespan,
            compute_time,
            comm_volume_total,
            comm_volume_max,
            max_neighbors,
            speedup,
            efficiency: speedup / m as f64,
        }
    }
}

/// Cells and load that change owner between two partitions of the same
/// matrix shape.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MigrationReport {
    /// Number of cells whose owner differs.
    pub cells: u64,
    /// Total load of those cells (under the *new* load matrix).
    pub load: u64,
}

/// Compares two partitions cell by cell (parallel over rows).
pub fn migration(pfx: &PrefixSum2D, prev: &Partition, next: &Partition) -> MigrationReport {
    let rows = pfx.rows();
    let cols = pfx.cols();
    let a = prev.owner_map(rows, cols);
    let b = next.owner_map(rows, cols);
    let (cells, load) = rectpart_parallel::map_range(rows, |r| {
        let mut cells = 0u64;
        let mut load = 0u64;
        for c in 0..cols {
            if a[r * cols + c] != b[r * cols + c] {
                cells += 1;
                load += pfx.load4(r, r + 1, c, c + 1);
            }
        }
        (cells, load)
    })
    .into_iter()
    .fold((0, 0), |x, y| (x.0 + y.0, x.1 + y.1));
    MigrationReport { cells, load }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rectpart_core::{LoadMatrix, Rect};

    fn uniform_pfx(n: usize) -> PrefixSum2D {
        PrefixSum2D::new(&LoadMatrix::from_fn(n, n, |_, _| 1))
    }

    #[test]
    fn single_processor_has_no_communication() {
        let pfx = uniform_pfx(8);
        let part = Partition::new(vec![Rect::new(0, 8, 0, 8)]);
        let rep = Simulator::default().evaluate(&pfx, &part);
        assert_eq!(rep.comm_volume_total, 0);
        assert_eq!(rep.max_neighbors, 0);
        assert!((rep.speedup - 1.0).abs() < 1e-12);
        assert!((rep.makespan - 64.0).abs() < 1e-12);
    }

    #[test]
    fn two_halves_exchange_one_row() {
        let pfx = uniform_pfx(8);
        let part = Partition::new(vec![Rect::new(0, 4, 0, 8), Rect::new(4, 8, 0, 8)]);
        let sim = Simulator::new(CommModel {
            alpha: 1.0,
            beta: 2.0,
            latency: 10.0,
        });
        let rep = sim.evaluate(&pfx, &part);
        // Each half sends/receives an 8-cell halo to 1 neighbour.
        assert_eq!(rep.comm_volume_total, 16);
        assert_eq!(rep.comm_volume_max, 8);
        assert_eq!(rep.max_neighbors, 1);
        assert!((rep.makespan - (32.0 + 16.0 + 10.0)).abs() < 1e-12);
        assert!(rep.speedup < 2.0);
        assert!(rep.efficiency < 1.0);
    }

    #[test]
    fn quadrants_have_two_neighbors_each() {
        let pfx = uniform_pfx(4);
        let part = Partition::new(vec![
            Rect::new(0, 2, 0, 2),
            Rect::new(0, 2, 2, 4),
            Rect::new(2, 4, 0, 2),
            Rect::new(2, 4, 2, 4),
        ]);
        let rep = Simulator::default().evaluate(&pfx, &part);
        assert_eq!(rep.max_neighbors, 2);
        assert_eq!(rep.comm_volume_total, 4 * 4); // each quadrant sends 2+2
    }

    #[test]
    fn striped_partitions_communicate_more_than_blocked() {
        let pfx = uniform_pfx(16);
        let stripes = Partition::new((0..16).map(|i| Rect::new(i, i + 1, 0, 16)).collect());
        let blocks = {
            let mut v = Vec::new();
            for r in 0..4 {
                for c in 0..4 {
                    v.push(Rect::new(4 * r, 4 * r + 4, 4 * c, 4 * c + 4));
                }
            }
            Partition::new(v)
        };
        let sim = Simulator::default();
        let s = sim.evaluate(&pfx, &stripes);
        let b = sim.evaluate(&pfx, &blocks);
        assert!(
            s.comm_volume_total > b.comm_volume_total,
            "stripes {} vs blocks {}",
            s.comm_volume_total,
            b.comm_volume_total
        );
    }

    #[test]
    fn migration_zero_for_identical_partitions() {
        let pfx = uniform_pfx(8);
        let p = Partition::new(vec![Rect::new(0, 4, 0, 8), Rect::new(4, 8, 0, 8)]);
        assert_eq!(migration(&pfx, &p, &p), MigrationReport::default());
    }

    #[test]
    fn migration_counts_moved_cells_and_load() {
        let mat = LoadMatrix::from_fn(4, 4, |r, _| (r + 1) as u32);
        let pfx = PrefixSum2D::new(&mat);
        let a = Partition::new(vec![Rect::new(0, 2, 0, 4), Rect::new(2, 4, 0, 4)]);
        let b = Partition::new(vec![Rect::new(0, 3, 0, 4), Rect::new(3, 4, 0, 4)]);
        let rep = migration(&pfx, &a, &b);
        assert_eq!(rep.cells, 4); // row 2 changes owner
        assert_eq!(rep.load, 4 * 3);
    }

    #[test]
    fn migration_swap_is_symmetric_in_cells() {
        let pfx = uniform_pfx(6);
        let a = Partition::new(vec![Rect::new(0, 3, 0, 6), Rect::new(3, 6, 0, 6)]);
        let b = Partition::new(vec![Rect::new(3, 6, 0, 6), Rect::new(0, 3, 0, 6)]);
        // Same rectangles, swapped owners: every cell "moves".
        assert_eq!(migration(&pfx, &a, &b).cells, 36);
    }
}

#[cfg(test)]
mod hetero_tests {
    use super::*;
    use rectpart_core::{LoadMatrix, Rect};

    #[test]
    fn faster_processors_finish_sooner() {
        let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(8, 8, |_, _| 1));
        let part = Partition::new(vec![Rect::new(0, 4, 0, 8), Rect::new(4, 8, 0, 8)]);
        let model = CommModel {
            alpha: 1.0,
            beta: 0.0,
            latency: 0.0,
        };
        let homo = Simulator::new(model).evaluate(&pfx, &part);
        assert!((homo.makespan - 32.0).abs() < 1e-12);
        // Doubling one processor's speed halves its side's time; the
        // other side now dominates.
        let hetero = Simulator::with_speeds(model, vec![2.0, 1.0]).evaluate(&pfx, &part);
        assert!((hetero.makespan - 32.0).abs() < 1e-12);
        // Doubling both halves the makespan but also the serial
        // reference: speedup is unchanged.
        let both = Simulator::with_speeds(model, vec![2.0, 2.0]).evaluate(&pfx, &part);
        assert!((both.makespan - 16.0).abs() < 1e-12);
        assert!((both.speedup - homo.speedup).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn speed_vector_length_is_checked() {
        let pfx = PrefixSum2D::new(&LoadMatrix::from_fn(2, 2, |_, _| 1));
        let part = Partition::new(vec![Rect::new(0, 2, 0, 2)]);
        let _ = Simulator::with_speeds(CommModel::default(), vec![1.0, 1.0]).evaluate(&pfx, &part);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_speed_is_rejected() {
        let _ = Simulator::with_speeds(CommModel::default(), vec![1.0, 0.0]);
    }
}
