//! A real multi-threaded stencil mini-app driven by a rectangle
//! partition.
//!
//! The cost models in [`crate::Simulator`] *predict* balance; this module
//! *executes*: a Jacobi 5-point relaxation over the matrix's grid, one OS
//! thread per (non-idle) processor, each sweeping exactly its rectangle,
//! with per-cell artificial work proportional to the load matrix — the
//! "spatially located heterogeneous workload" of the paper's abstract,
//! made literal. Per-thread busy times expose the realized balance, so
//! partition quality can be verified against wall-clock behaviour rather
//! than a model.
//!
//! Concurrency layout: two grids (read/write) swapped per iteration and a
//! barrier between iterations. Within an iteration every thread *reads*
//! the shared previous grid freely and *writes* only the cells of its own
//! rectangle — the partition's disjointness (checked up front) is exactly
//! the data-race-freedom argument.

use std::cell::UnsafeCell;
use std::sync::Barrier;
use std::time::Instant;

use rectpart_core::{LoadMatrix, Partition, Rect};

/// Configuration for [`run_stencil`].
#[derive(Clone, Copy, Debug)]
pub struct StencilConfig {
    /// Jacobi iterations to execute.
    pub iterations: usize,
    /// Artificial work units per unit of cell load (inner spin
    /// multiplier); 0 makes every cell equally cheap.
    pub work_scale: u32,
}

impl Default for StencilConfig {
    fn default() -> Self {
        Self {
            iterations: 8,
            work_scale: 1,
        }
    }
}

/// Outcome of a stencil run.
#[derive(Clone, Debug)]
pub struct StencilReport {
    /// End-to-end wall time in seconds.
    pub wall_seconds: f64,
    /// Per-thread busy time (compute only, excluding barrier waits), one
    /// entry per non-idle processor in partition order.
    pub busy_seconds: Vec<f64>,
    /// `mean(busy) / max(busy)` — 1.0 is perfect balance.
    pub balance_efficiency: f64,
    /// Sum of the final grid, for cross-checking against the sequential
    /// reference (Jacobi is order-independent, so this is exact).
    pub checksum: f64,
}

/// Shared grid written by many threads at provably disjoint cells.
struct SharedGrid(UnsafeCell<Vec<f64>>);

// SAFETY: all concurrent mutation goes through `write_cell`, whose
// callers partition the index space by rectangle ownership (validated
// before the threads start); reads of the *other* buffer are separated
// from its writes by the barrier.
unsafe impl Sync for SharedGrid {}

impl SharedGrid {
    fn new(data: Vec<f64>) -> Self {
        Self(UnsafeCell::new(data))
    }

    /// # Safety
    ///
    /// Callers must hold exclusive logical ownership of `idx` (their
    /// rectangle) for the current iteration, and `idx` must be in
    /// bounds. No two threads may pass the same `idx` between two
    /// barrier crossings, and no thread may [`read_cell`] this buffer
    /// half during the same window (the swap discipline in
    /// [`run_stencil`] guarantees both). The aliasing contract is
    /// exercised by `write_cell_disjoint_aliasing_contract` below,
    /// which is written to fail under Miri if a `&mut` is ever formed
    /// or writes overlap.
    ///
    /// [`read_cell`]: SharedGrid::read_cell
    #[inline]
    unsafe fn write_cell(&self, idx: usize, v: f64) {
        // Write through a raw element pointer: no &mut to the Vec is ever
        // formed, so disjoint concurrent writes are sound.
        unsafe {
            let vec = &*self.0.get();
            debug_assert!(idx < vec.len());
            let base = vec.as_ptr() as *mut f64;
            base.add(idx).write(v);
        }
    }

    #[inline]
    fn read_cell(&self, idx: usize) -> f64 {
        // Reads race only with writes to the same buffer half, which the
        // barrier excludes.
        unsafe {
            let vec = &*self.0.get();
            debug_assert!(idx < vec.len());
            vec.as_ptr().add(idx).read()
        }
    }

    fn into_inner(self) -> Vec<f64> {
        self.0.into_inner()
    }
}

/// Runs the partitioned stencil on real threads and reports realized
/// balance.
///
/// # Panics
///
/// Panics if the partition does not tile the matrix.
pub fn run_stencil(
    matrix: &LoadMatrix,
    partition: &Partition,
    cfg: &StencilConfig,
) -> StencilReport {
    partition
        .validate_dims(matrix.rows(), matrix.cols())
        .expect("stencil requires a valid tiling (the data-race-freedom argument)");
    let rows = matrix.rows();
    let cols = matrix.cols();
    let init: Vec<f64> = matrix.data().iter().map(|&v| v as f64).collect();
    let grids = [
        SharedGrid::new(init.clone()),
        SharedGrid::new(vec![0.0; rows * cols]),
    ];
    let rects: Vec<Rect> = partition
        .rects()
        .iter()
        .copied()
        .filter(|r| !r.is_empty())
        .collect();
    let barrier = Barrier::new(rects.len());
    let wall_start = Instant::now();
    // lint:allow(thread) -- the stencil mini-app measures realized balance on real OS threads; it runs only when explicitly invoked, never on a partitioner path
    let busy_seconds: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = rects
            .iter()
            .map(|rect| {
                let grids = &grids;
                let barrier = &barrier;
                let rect = *rect;
                // lint:allow(thread) -- one worker per non-idle processor is the experiment being measured
                scope.spawn(move || {
                    let mut busy = 0.0f64;
                    for it in 0..cfg.iterations {
                        let t0 = Instant::now();
                        let src = &grids[it % 2];
                        let dst = &grids[(it + 1) % 2];
                        for r in rect.r0..rect.r1 {
                            for c in rect.c0..rect.c1 {
                                let idx = r * cols + c;
                                let center = src.read_cell(idx);
                                let up = if r > 0 {
                                    src.read_cell(idx - cols)
                                } else {
                                    center
                                };
                                let down = if r + 1 < rows {
                                    src.read_cell(idx + cols)
                                } else {
                                    center
                                };
                                let left = if c > 0 {
                                    src.read_cell(idx - 1)
                                } else {
                                    center
                                };
                                let right = if c + 1 < cols {
                                    src.read_cell(idx + 1)
                                } else {
                                    center
                                };
                                let mut v = 0.2 * (center + up + down + left + right);
                                // Heterogeneous per-cell work: the load
                                // matrix made literal.
                                for _ in 0..matrix.get(r, c) as u64 * cfg.work_scale as u64 {
                                    v = std::hint::black_box(v * 0.999_999_9 + 1e-9);
                                }
                                // SAFETY: (r, c) lies in this thread's
                                // rectangle; the tiling is disjoint.
                                unsafe { dst.write_cell(idx, v) };
                            }
                        }
                        busy += t0.elapsed().as_secs_f64();
                        barrier.wait();
                    }
                    busy
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let [g0, g1] = grids;
    let final_grid = if cfg.iterations.is_multiple_of(2) {
        g0.into_inner()
    } else {
        g1.into_inner()
    };
    let checksum = final_grid.iter().sum();
    let max_busy = busy_seconds.iter().cloned().fold(0.0, f64::max);
    let mean_busy = busy_seconds.iter().sum::<f64>() / busy_seconds.len().max(1) as f64;
    StencilReport {
        wall_seconds,
        busy_seconds,
        balance_efficiency: if max_busy > 0.0 {
            mean_busy / max_busy
        } else {
            1.0
        },
        checksum,
    }
}

/// Sequential reference implementation (same arithmetic, same order
/// independence), for correctness checks.
pub fn run_stencil_sequential(matrix: &LoadMatrix, cfg: &StencilConfig) -> f64 {
    let rows = matrix.rows();
    let cols = matrix.cols();
    let mut prev: Vec<f64> = matrix.data().iter().map(|&v| v as f64).collect();
    let mut next = vec![0.0; rows * cols];
    for _ in 0..cfg.iterations {
        for r in 0..rows {
            for c in 0..cols {
                let idx = r * cols + c;
                let center = prev[idx];
                let up = if r > 0 { prev[idx - cols] } else { center };
                let down = if r + 1 < rows {
                    prev[idx + cols]
                } else {
                    center
                };
                let left = if c > 0 { prev[idx - 1] } else { center };
                let right = if c + 1 < cols { prev[idx + 1] } else { center };
                let mut v = 0.2 * (center + up + down + left + right);
                for _ in 0..matrix.get(r, c) as u64 * cfg.work_scale as u64 {
                    v = std::hint::black_box(v * 0.999_999_9 + 1e-9);
                }
                next[idx] = v;
            }
        }
        std::mem::swap(&mut prev, &mut next);
    }
    prev.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rectpart_core::{HierRb, JagMHeur, Partitioner, PrefixSum2D};

    fn small_matrix() -> LoadMatrix {
        LoadMatrix::from_fn(24, 24, |r, c| 1 + ((r * 7 + c * 3) % 5) as u32)
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let m = small_matrix();
        let pfx = PrefixSum2D::new(&m);
        let cfg = StencilConfig {
            iterations: 5,
            work_scale: 0,
        };
        let seq = run_stencil_sequential(&m, &cfg);
        for algo in [&HierRb::load() as &dyn Partitioner, &JagMHeur::best()] {
            for procs in [1, 2, 4, 7] {
                let part = algo.partition(&pfx, procs);
                let rep = run_stencil(&m, &part, &cfg);
                assert_eq!(
                    rep.checksum.to_bits(),
                    seq.to_bits(),
                    "{} procs={procs}: Jacobi must be bit-identical",
                    algo.name()
                );
                assert!(rep.balance_efficiency > 0.0 && rep.balance_efficiency <= 1.0);
                assert_eq!(rep.busy_seconds.len(), part.active_parts());
            }
        }
    }

    #[test]
    fn even_iteration_count_also_correct() {
        let m = small_matrix();
        let pfx = PrefixSum2D::new(&m);
        let cfg = StencilConfig {
            iterations: 4,
            work_scale: 0,
        };
        let seq = run_stencil_sequential(&m, &cfg);
        let part = HierRb::load().partition(&pfx, 4);
        let rep = run_stencil(&m, &part, &cfg);
        assert_eq!(rep.checksum.to_bits(), seq.to_bits());
    }

    #[test]
    fn heterogeneous_work_is_exercised() {
        let m = small_matrix();
        let pfx = PrefixSum2D::new(&m);
        let part = JagMHeur::best().partition(&pfx, 4);
        let cfg = StencilConfig {
            iterations: 2,
            work_scale: 3,
        };
        let rep = run_stencil(&m, &part, &cfg);
        assert!(rep.wall_seconds > 0.0);
        assert!(rep.busy_seconds.iter().all(|&b| b > 0.0));
        // Same arithmetic as sequential even with the spin work.
        let seq = run_stencil_sequential(&m, &cfg);
        assert_eq!(rep.checksum.to_bits(), seq.to_bits());
    }

    /// Miri-style exercise of the [`SharedGrid::write_cell`] aliasing
    /// contract: several threads concurrently write *interleaved*,
    /// pairwise-disjoint index sets (stride = thread count, the harshest
    /// adjacency pattern) through raw element pointers derived from a
    /// shared `&SharedGrid`. Run under Miri this validates that no
    /// `&mut Vec` is ever formed and that per-element provenance stays
    /// disjoint; run natively it catches lost or torn writes, which
    /// would leave some cell without its expected value.
    #[test]
    fn write_cell_disjoint_aliasing_contract() {
        const N: usize = 1024;
        const THREADS: usize = 4;
        let grid = SharedGrid::new(vec![0.0; N]);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let grid = &grid;
                scope.spawn(move || {
                    for idx in (t..N).step_by(THREADS) {
                        // SAFETY: indices congruent to t mod THREADS are
                        // pairwise disjoint across threads and < N, and
                        // nothing reads this buffer until the scope ends.
                        unsafe { grid.write_cell(idx, (2 * idx + 1) as f64) };
                    }
                });
            }
        });
        let data = grid.into_inner();
        assert_eq!(data.len(), N);
        for (idx, v) in data.iter().enumerate() {
            assert_eq!(*v, (2 * idx + 1) as f64, "cell {idx} lost its write");
        }
    }

    #[test]
    #[should_panic(expected = "valid tiling")]
    fn rejects_invalid_partitions() {
        let m = small_matrix();
        let bad = rectpart_core::Partition::new(vec![Rect::new(0, 10, 0, 24)]);
        let _ = run_stencil(&m, &bad, &StencilConfig::default());
    }
}
