#![warn(missing_docs)]

//! BSP execution simulator for rectangle partitions.
//!
//! The paper optimizes compute load only and names communication and
//! migration costs as future work (§5): "we plan to investigate the
//! effect of these different partitioning schemes in communication cost,
//! as well as taking into account data migration costs in dynamic
//! applications". This crate implements that evaluation layer:
//!
//! * a **BSP iteration model** — every processor computes over its
//!   rectangle (`α` per unit load), then exchanges halos with its
//!   edge-adjacent neighbours (`β` per boundary cell + a per-neighbour
//!   latency); the iteration time is the slowest processor;
//! * **migration accounting** between successive partitions of a dynamic
//!   run (cells and load changing owners);
//! * a **dynamic-run driver** that repartitions a matrix time series
//!   (e.g. the PIC-MAG trace) with any [`Partitioner`](rectpart_core::Partitioner)
//!   and reports
//!   imbalance, makespan, speedup and migration per step;
//! * a **real threaded stencil mini-app** ([`run_stencil`]) that executes
//!   a partitioned Jacobi relaxation with one OS thread per processor and
//!   measures realized (not modeled) balance.

mod dynamic;
mod model;
mod stencil;

pub use dynamic::{dynamic_run, DynamicStats, RebalancePolicy};
pub use model::{migration, CommModel, ExecutionReport, MigrationReport, Simulator};
pub use stencil::{run_stencil, run_stencil_sequential, StencilConfig, StencilReport};
