#![forbid(unsafe_code)]
//! Offline shim for the subset of the `proptest` crate API this
//! workspace uses. See `shims/README.md` for the rationale.
//!
//! Differences from upstream proptest:
//! * no shrinking — a failing case reports its inputs (via the assert
//!   message) and its deterministic case seed, but is not minimized;
//! * the RNG is seeded from the test name and case index, so every run
//!   explores the same cases and failures reproduce exactly;
//! * `prop_assert!`/`prop_assert_eq!` panic instead of returning
//!   `Err(TestCaseError)` — equivalent under `#[test]`.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values of type `Value`. Unlike upstream there is no
/// value tree / shrinking; `generate` draws one value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

pub mod collection {
    use super::*;

    /// Anything usable as the size argument of [`vec()`]: a fixed size
    /// or a half-open range of sizes.
    pub trait SizeRange {
        fn pick(&self, rng: &mut StdRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.start..self.end)
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Derives the deterministic RNG for one test case. FNV-1a over the
/// test name, mixed with the case index.
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// The proptest entry macro. Supports the two forms used in this
/// workspace: with and without a leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let run = || $body;
                run();
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::collection::vec;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, Vec<u8>)> {
        (1usize..10).prop_flat_map(|n| (Just(n), vec(0u8..5, n)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respected(x in 2u32..9, y in 0u64..=3) {
            prop_assert!((2..9).contains(&x));
            prop_assert!(y <= 3);
        }

        #[test]
        fn flat_map_links_length(
            pair in arb_pair(),
        ) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&b| b < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let strat = vec(0u64..1000, 3..8);
        let a: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<Vec<u64>> = (0..5)
            .map(|c| strat.generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
