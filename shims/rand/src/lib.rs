#![forbid(unsafe_code)]
//! Offline shim for the subset of the `rand` crate API this workspace
//! uses. See `shims/README.md` for the rationale.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** with SplitMix64
//! seed expansion — deterministic and high quality, but **not**
//! stream-compatible with upstream `rand`'s ChaCha12-based `StdRng`.
//! Code must rely only on determinism, never on specific sampled values.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: everything is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface. Only `seed_from_u64` is used in this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64 step — the same seed-expansion scheme upstream `rand`
/// uses for `seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256** generator (Blackman & Vigna). Passes BigCrush;
    /// plenty for workload synthesis and property tests.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // An all-zero state would be a fixed point; SplitMix64 can
            // only produce it with negligible probability, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Upstream exposes a distinct `SmallRng`; here it is the same
    /// generator (the workspace only requires determinism).
    pub type SmallRng = StdRng;
}

/// Types that can be sampled uniformly from the full output of the RNG
/// via `Rng::gen()`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased uniform integer in `[0, n)` via Lemire's widening-multiply
/// rejection method. `n` must be non-zero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n {
            return (m >> 64) as u64;
        }
        // Rejected: retry with a fresh word.
    }
}

/// Ranges that `Rng::gen_range` accepts. Parameterized over the output
/// type (like upstream) so integer literals at call sites infer from the
/// binding, e.g. `let n: usize = rng.gen_range(20..200)`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = uniform_below(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        let unit = f64::sample(rng);
        lo + (hi - lo) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f32::sample(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// The user-facing sampling interface, blanket-implemented for every
/// `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            let neg = rng.gen_range(-5i64..=-2);
            assert!((-5..=-2).contains(&neg));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn uniform_covers_small_range() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
