#![forbid(unsafe_code)]
//! Offline shim for the subset of the `criterion` crate API this
//! workspace uses. See `shims/README.md` for the rationale.
//!
//! It measures real wall-clock time (adaptive warm-up, then
//! `sample_size` samples of batched iterations) and prints mean/min/max
//! per iteration. There is no statistical outlier analysis, no HTML
//! report, and no baseline comparison. As an extension over upstream,
//! finished measurements are retained on the [`Criterion`] value
//! (`Criterion::results`) so harness-less benches can export them, e.g.
//! to JSON.

use std::fmt;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One completed measurement, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub id: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Accepted wherever upstream takes `impl Into<BenchmarkId>`-ish names.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

#[derive(Clone, Copy, Debug)]
struct MeasureConfig {
    sample_size: usize,
    warm_up: Duration,
    target_sample: Duration,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            target_sample: Duration::from_millis(100),
        }
    }
}

/// Passed to the closure given to `bench_function`; `iter` runs and
/// times the workload.
pub struct Bencher<'a> {
    cfg: MeasureConfig,
    id: String,
    out: &'a mut Vec<BenchResult>,
}

impl Bencher<'_> {
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Adaptive warm-up: at least one call, until the warm-up budget
        // is spent. Doubles as the per-iteration time estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= self.cfg.warm_up {
                break;
            }
        }
        let est_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;

        let iters_per_sample =
            ((self.cfg.target_sample.as_nanos() as f64 / est_iter.max(1.0)) as u64).max(1);
        let mut per_iter_ns = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            per_iter_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }

        let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
        let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<50} time: [{} {} {}]  ({} samples x {} iters)",
            self.id,
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max),
            per_iter_ns.len(),
            iters_per_sample,
        );
        self.out.push(BenchResult {
            id: self.id.clone(),
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: per_iter_ns.len(),
            iters_per_sample,
        });
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[derive(Default)]
pub struct Criterion {
    cfg: MeasureConfig,
    results: Vec<BenchResult>,
}

impl Criterion {
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.cfg, id.to_string(), &mut self.results, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            cfg: self.cfg,
            results: &mut self.results,
        }
    }

    /// Shim extension: all measurements recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Upstream-compat no-op (CLI arg handling is not supported).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

fn run_one(
    cfg: MeasureConfig,
    id: String,
    out: &mut Vec<BenchResult>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { cfg, id, out };
    f(&mut b);
}

pub struct BenchmarkGroup<'a> {
    name: String,
    cfg: MeasureConfig,
    results: &'a mut Vec<BenchResult>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.cfg.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.target_sample = d / self.cfg.sample_size.max(1) as u32;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up = d;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_id());
        run_one(self.cfg, full, self.results, f);
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(2);
        g.warm_up_time(Duration::from_millis(1));
        g.measurement_time(Duration::from_millis(2));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sumn", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        drop(g);
        assert_eq!(c.results().len(), 2);
        assert_eq!(c.results()[0].id, "t/sum");
        assert_eq!(c.results()[1].id, "t/sumn/50");
        assert!(c.results()[0].mean_ns > 0.0);
    }
}
