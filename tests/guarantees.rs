//! The paper's worst-case guarantees (Lemma 1, Theorems 1 and 3) hold on
//! strictly positive matrices for the implemented heuristics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart::core::bounds::{jag_m_heur_ratio, jag_pq_heur_ratio, lemma1_factor};
use rectpart::core::{JagMHeur, JagPqHeur, LoadMatrix, Partitioner, PrefixSum2D};
use rectpart::onedim::{direct_cut, recursive_bisection, IntervalCost, PrefixCosts};

fn positive_matrix(n: usize, delta_max: u32, seed: u64) -> LoadMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    LoadMatrix::from_fn(n, n, |_, _| rng.gen_range(100..=100 * delta_max))
}

#[test]
fn lemma1_bounds_direct_cut_on_positive_arrays() {
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..20 {
        let n = rng.gen_range(20..200);
        let loads: Vec<u64> = (0..n).map(|_| rng.gen_range(50..250)).collect();
        let c = PrefixCosts::from_loads(&loads);
        let delta = *loads.iter().max().unwrap() as f64 / *loads.iter().min().unwrap() as f64;
        for m in [2usize, 5, 10] {
            if m >= n {
                continue;
            }
            let bottleneck = direct_cut(&c, m).bottleneck(&c) as f64;
            let avg = c.total() as f64 / m as f64;
            let bound = avg * lemma1_factor(delta, m, n) + 1.0;
            assert!(bottleneck <= bound, "n={n} m={m}: {bottleneck} > {bound}");
            // RB enjoys the same total/m + max guarantee.
            let rb = recursive_bisection(&c, m).bottleneck(&c) as f64;
            assert!(rb <= avg + c.max_unit_cost() as f64 + 1.0);
        }
    }
}

#[test]
fn theorem1_bounds_jag_pq_heur() {
    for seed in 0..6 {
        let matrix = positive_matrix(48, 3, seed);
        let pfx = PrefixSum2D::new(&matrix);
        let delta = pfx.delta().unwrap();
        for m in [9usize, 16, 25] {
            let p = (m as f64).sqrt() as usize;
            let part = JagPqHeur::best().partition(&pfx, m);
            let ratio = part.lmax(&pfx) as f64 / pfx.average_load(m);
            let bound = jag_pq_heur_ratio(delta, p, p, 48, 48);
            assert!(
                ratio <= bound + 1e-9,
                "seed={seed} m={m}: {ratio} > {bound}"
            );
        }
    }
}

#[test]
fn theorem3_bounds_jag_m_heur() {
    for seed in 0..6 {
        let matrix = positive_matrix(48, 3, 100 + seed);
        let pfx = PrefixSum2D::new(&matrix);
        let delta = pfx.delta().unwrap();
        for m in [16usize, 25, 49] {
            let p = (m as f64).sqrt() as usize;
            if p >= m {
                continue;
            }
            let part = JagMHeur::best().partition(&pfx, m);
            let ratio = part.lmax(&pfx) as f64 / pfx.average_load(m);
            let bound = jag_m_heur_ratio(delta, p, m, 48, 48);
            assert!(
                ratio <= bound + 1e-9,
                "seed={seed} m={m}: {ratio} > {bound}"
            );
        }
    }
}

#[test]
fn guarantees_tighten_as_delta_shrinks() {
    // A structural property the figure-9 experiment relies on: lower
    // heterogeneity means tighter worst cases for both theorems.
    for &(m, n) in &[(100usize, 512usize), (400, 512)] {
        let p = (m as f64).sqrt() as usize;
        let mut prev = f64::INFINITY;
        for delta in [4.0, 2.0, 1.5, 1.1, 1.0] {
            let t1 = jag_pq_heur_ratio(delta, p, p, n, n);
            let t3 = jag_m_heur_ratio(delta, p, m, n, n);
            assert!(t1 <= prev + 1e-12);
            assert!(t3.is_finite() && t3 >= 1.0);
            prev = t1;
        }
    }
}

#[test]
fn two_approximation_of_heuristics_without_positivity() {
    // Even with zeros, DC and RB stay within total/m + max element.
    let loads = [0u64, 40, 0, 0, 13, 7, 0, 22, 0, 5];
    let c = PrefixCosts::from_loads(&loads);
    for m in 2..=6 {
        let bound = c.total() / m as u64 + c.max_unit_cost() + 1;
        assert!(direct_cut(&c, m).bottleneck(&c) <= bound);
        assert!(recursive_bisection(&c, m).bottleneck(&c) <= bound);
    }
}
