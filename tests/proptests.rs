//! Property-based tests (proptest) over the core invariants: prefix-sum
//! correctness, 1D optimality agreement, probe monotonicity, and tiling
//! validity of every partitioner on arbitrary matrices.

use proptest::collection::vec;
use proptest::prelude::*;
use rectpart::core::{standard_heuristics, JagMOpt, LoadMatrix, Partitioner, PrefixSum2D, Rect};
use rectpart::onedim::{
    direct_cut, dp_optimal, nicol, probe_feasible, recursive_bisection, IntervalCost, PrefixCosts,
};

fn arb_matrix() -> impl Strategy<Value = LoadMatrix> {
    (1usize..14, 1usize..14).prop_flat_map(|(r, c)| {
        vec(0u32..200, r * c).prop_map(move |data| LoadMatrix::from_vec(r, c, data))
    })
}

fn arb_loads() -> impl Strategy<Value = Vec<u64>> {
    vec(0u64..500, 1..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prefix_sums_match_naive(matrix in arb_matrix()) {
        let pfx = PrefixSum2D::new(&matrix);
        prop_assert_eq!(pfx.total(), matrix.total());
        let rows = matrix.rows();
        let cols = matrix.cols();
        for (r0, r1, c0, c1) in [
            (0, rows, 0, cols),
            (0, rows / 2, 0, cols),
            (rows / 3, rows, cols / 3, cols),
            (rows / 2, rows / 2, 0, cols),
        ] {
            let rect = Rect::new(r0, r1, c0, c1);
            prop_assert_eq!(pfx.load(&rect), matrix.load_naive(&rect));
        }
    }

    #[test]
    fn nicol_matches_dp(loads in arb_loads(), m in 1usize..8) {
        let c = PrefixCosts::from_loads(&loads);
        prop_assert_eq!(nicol(&c, m).bottleneck, dp_optimal(&c, m).bottleneck);
    }

    #[test]
    fn heuristics_bounded_below_by_optimal(loads in arb_loads(), m in 1usize..8) {
        let c = PrefixCosts::from_loads(&loads);
        let opt = nicol(&c, m).bottleneck;
        prop_assert!(direct_cut(&c, m).bottleneck(&c) >= opt);
        prop_assert!(recursive_bisection(&c, m).bottleneck(&c) >= opt);
        prop_assert!(opt >= c.total() / m as u64);
        prop_assert!(opt >= c.max_unit_cost());
    }

    #[test]
    fn probe_is_monotone_and_tight(loads in arb_loads(), m in 1usize..6) {
        let c = PrefixCosts::from_loads(&loads);
        let opt = nicol(&c, m).bottleneck;
        prop_assert!(probe_feasible(&c, m, opt));
        if opt > 0 {
            prop_assert!(!probe_feasible(&c, m, opt - 1));
        }
        prop_assert!(probe_feasible(&c, m, opt.saturating_add(1000)));
    }

    #[test]
    fn all_heuristics_tile_random_matrices(matrix in arb_matrix(), m in 1usize..12) {
        let pfx = PrefixSum2D::new(&matrix);
        for algo in standard_heuristics() {
            let p = algo.partition(&pfx, m);
            prop_assert!(p.validate(&pfx).is_ok(), "{} failed: {:?}", algo.name(), p.validate(&pfx));
            prop_assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
            prop_assert_eq!(p.loads(&pfx).iter().sum::<u64>(), pfx.total());
        }
    }

    #[test]
    fn m_opt_never_beaten_by_jagged_heuristics(matrix in arb_matrix(), m in 1usize..7) {
        let pfx = PrefixSum2D::new(&matrix);
        let opt = JagMOpt::default().partition(&pfx, m);
        prop_assert!(opt.validate(&pfx).is_ok());
        let heur = rectpart::core::JagMHeur::best().partition(&pfx, m);
        prop_assert!(opt.lmax(&pfx) <= heur.lmax(&pfx));
        prop_assert!(opt.lmax(&pfx) >= pfx.lower_bound(m));
    }

    #[test]
    fn owner_map_partitions_cells(matrix in arb_matrix(), m in 1usize..9) {
        let pfx = PrefixSum2D::new(&matrix);
        let p = rectpart::core::HierRb::load().partition(&pfx, m);
        let owners = p.owner_map(matrix.rows(), matrix.cols());
        prop_assert!(owners.iter().all(|&o| o != u32::MAX && (o as usize) < m));
    }

    #[test]
    fn uniform_cuts_are_fair(n in 1usize..200, m in 1usize..20) {
        let cuts = rectpart::onedim::Cuts::uniform(n, m);
        prop_assert!(cuts.validate(n, m).is_ok());
        let sizes: Vec<usize> = cuts.intervals().map(|(a, b)| b - a).collect();
        let (mn, mx) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(mx - mn <= 1, "uniform interval sizes must differ by at most 1");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spiral_tiles_random_matrices(matrix in arb_matrix(), m in 1usize..12) {
        let pfx = PrefixSum2D::new(&matrix);
        let p = rectpart::core::SpiralRelaxed::default().partition(&pfx, m);
        prop_assert!(p.validate(&pfx).is_ok());
        prop_assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
    }

    #[test]
    fn tree_index_agrees_with_linear_scan(matrix in arb_matrix(), m in 1usize..10) {
        let pfx = PrefixSum2D::new(&matrix);
        let part = rectpart::core::HierRelaxed::load().partition(&pfx, m);
        let idx = rectpart::core::RectTreeIndex::new(&part);
        for r in 0..matrix.rows() {
            for c in 0..matrix.cols() {
                prop_assert_eq!(idx.owner_of(r, c), part.owner_of(r, c));
            }
        }
    }

    #[test]
    fn jagged_index_agrees_on_jagged_output(matrix in arb_matrix(), m in 1usize..10) {
        let pfx = PrefixSum2D::new(&matrix);
        let part = rectpart::core::JagMHeur::best().partition(&pfx, m);
        if let Some(idx) = rectpart::core::JaggedIndex::detect(&part) {
            for r in 0..matrix.rows() {
                for c in 0..matrix.cols() {
                    prop_assert_eq!(idx.owner_of(r, c), part.owner_of(r, c));
                }
            }
        }
    }

    #[test]
    fn coarsen_preserves_total(matrix in arb_matrix(), factor in 1usize..6) {
        let coarse = matrix.coarsen(factor);
        prop_assert_eq!(coarse.total(), matrix.total());
        prop_assert_eq!(coarse.rows(), matrix.rows().div_ceil(factor));
        prop_assert_eq!(coarse.cols(), matrix.cols().div_ceil(factor));
    }

    #[test]
    fn multilevel_tiles_random_matrices(matrix in arb_matrix(), m in 1usize..8, factor in 1usize..4) {
        let pfx = PrefixSum2D::new(&matrix);
        let ml = rectpart::core::Multilevel::new(&matrix, rectpart::core::JagMHeur::best(), factor);
        let p = ml.partition(&pfx, m);
        prop_assert!(p.validate(&pfx).is_ok());
    }

    #[test]
    fn partition_stats_are_consistent(matrix in arb_matrix(), m in 1usize..9) {
        let pfx = PrefixSum2D::new(&matrix);
        let part = rectpart::core::HierRb::load().partition(&pfx, m);
        let s = rectpart::core::PartitionStats::compute(&pfx, &part);
        prop_assert_eq!(s.lmax, part.lmax(&pfx));
        prop_assert!(s.lmin <= s.lmax || s.active_parts == 0);
        prop_assert!((s.imbalance - part.load_imbalance(&pfx)).abs() < 1e-12);
        prop_assert!(s.max_aspect >= 1.0);
    }
}
