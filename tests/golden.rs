//! Golden regression tests: every generator and algorithm in this
//! workspace is deterministic, so exact bottleneck values for fixed
//! seeds are stable across releases. A failure here means an algorithm's
//! *behaviour* changed — intentionally or not — and EXPERIMENTS.md should
//! be regenerated alongside the fix.

use rectpart::core::{
    standard_heuristics, JagMOpt, JagPqOpt, LoadMatrix, Partitioner, PrefixSum2D, SpiralRelaxed,
};
use rectpart::prelude::*;

/// (workload, algorithm, m, expected Lmax) for 48x48 seed-7 instances.
/// Values regenerated when the workspace moved to the in-tree xoshiro
/// RNG (the instances changed; the algorithms did not).
const GOLDEN: &[(&str, &str, usize, u64)] = &[
    ("uniform", "RECT-UNIFORM", 9, 325490),
    ("uniform", "RECT-UNIFORM", 16, 183600),
    ("uniform", "RECT-NICOL", 9, 325490),
    ("uniform", "RECT-NICOL", 16, 183600),
    ("uniform", "JAG-PQ-HEUR-BEST", 9, 325490),
    ("uniform", "JAG-PQ-HEUR-BEST", 16, 183600),
    ("uniform", "JAG-M-HEUR-BEST", 9, 325490),
    ("uniform", "JAG-M-HEUR-BEST", 16, 183600),
    ("uniform", "HIER-RB-LOAD", 9, 331548),
    ("uniform", "HIER-RB-LOAD", 16, 182530),
    ("uniform", "HIER-RELAXED-LOAD", 9, 325806),
    ("uniform", "HIER-RELAXED-LOAD", 16, 182670),
    ("uniform", "JAG-PQ-OPT-BEST", 9, 325490),
    ("uniform", "JAG-M-OPT-BEST", 9, 325490),
    ("uniform", "SPIRAL-RELAXED", 9, 326286),
    ("diagonal", "RECT-UNIFORM", 9, 309101),
    ("diagonal", "RECT-UNIFORM", 16, 238757),
    ("diagonal", "RECT-NICOL", 9, 245148),
    ("diagonal", "RECT-NICOL", 16, 151574),
    ("diagonal", "JAG-PQ-HEUR-BEST", 9, 131151),
    ("diagonal", "JAG-PQ-HEUR-BEST", 16, 79448),
    ("diagonal", "JAG-M-HEUR-BEST", 9, 131151),
    ("diagonal", "JAG-M-HEUR-BEST", 16, 79448),
    ("diagonal", "HIER-RB-LOAD", 9, 125039),
    ("diagonal", "HIER-RB-LOAD", 16, 73241),
    ("diagonal", "HIER-RELAXED-LOAD", 9, 125866),
    ("diagonal", "HIER-RELAXED-LOAD", 16, 74515),
    ("diagonal", "JAG-PQ-OPT-BEST", 9, 126476),
    ("diagonal", "JAG-M-OPT-BEST", 9, 122525),
    ("diagonal", "SPIRAL-RELAXED", 9, 132366),
    ("multi-peak", "RECT-UNIFORM", 9, 87263),
    ("multi-peak", "RECT-UNIFORM", 16, 72982),
    ("multi-peak", "RECT-NICOL", 9, 49071),
    ("multi-peak", "RECT-NICOL", 16, 33764),
    ("multi-peak", "JAG-PQ-HEUR-BEST", 9, 33113),
    ("multi-peak", "JAG-PQ-HEUR-BEST", 16, 23488),
    ("multi-peak", "JAG-M-HEUR-BEST", 9, 33113),
    ("multi-peak", "JAG-M-HEUR-BEST", 16, 23488),
    ("multi-peak", "HIER-RB-LOAD", 9, 41199),
    ("multi-peak", "HIER-RB-LOAD", 16, 28423),
    ("multi-peak", "HIER-RELAXED-LOAD", 9, 41499),
    ("multi-peak", "HIER-RELAXED-LOAD", 16, 23749),
    ("multi-peak", "JAG-PQ-OPT-BEST", 9, 33113),
    ("multi-peak", "JAG-M-OPT-BEST", 9, 32580),
    ("multi-peak", "SPIRAL-RELAXED", 9, 37747),
];

fn workload(name: &str) -> LoadMatrix {
    match name {
        "uniform" => uniform(48, 48, 7).delta(1.5).build(),
        "diagonal" => diagonal(48, 48, 7).build(),
        "multi-peak" => multi_peak(48, 48, 7).build(),
        other => panic!("unknown golden workload {other}"),
    }
}

fn algorithm(name: &str) -> Box<dyn Partitioner> {
    match name {
        "JAG-PQ-OPT-BEST" => Box::new(JagPqOpt::default()),
        "JAG-M-OPT-BEST" => Box::new(JagMOpt::default()),
        "SPIRAL-RELAXED" => Box::new(SpiralRelaxed::default()),
        other => standard_heuristics()
            .into_iter()
            .find(|a| a.name() == other)
            .unwrap_or_else(|| panic!("unknown golden algorithm {other}")),
    }
}

#[test]
fn golden_bottlenecks_are_stable() {
    let mut cache: std::collections::HashMap<&str, PrefixSum2D> = Default::default();
    for &(wl, algo, m, expected) in GOLDEN {
        let pfx = cache
            .entry(wl)
            .or_insert_with(|| PrefixSum2D::new(&workload(wl)));
        let got = algorithm(algo).partition(pfx, m).lmax(pfx);
        assert_eq!(
            got, expected,
            "{algo} on {wl} m={m}: behaviour changed (got {got}, golden {expected})"
        );
    }
}
