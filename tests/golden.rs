//! Golden regression tests: every generator and algorithm in this
//! workspace is deterministic, so exact bottleneck values for fixed
//! seeds are stable across releases. A failure here means an algorithm's
//! *behaviour* changed — intentionally or not — and EXPERIMENTS.md should
//! be regenerated alongside the fix.

use rectpart::core::{
    standard_heuristics, JagMOpt, JagPqOpt, LoadMatrix, Partitioner, PrefixSum2D, SpiralRelaxed,
};
use rectpart::prelude::*;

/// (workload, algorithm, m, expected Lmax) for 48x48 seed-7 instances.
const GOLDEN: &[(&str, &str, usize, u64)] = &[
    ("uniform", "RECT-UNIFORM", 9, 324924),
    ("uniform", "RECT-UNIFORM", 16, 183149),
    ("uniform", "RECT-NICOL", 9, 324924),
    ("uniform", "RECT-NICOL", 16, 183149),
    ("uniform", "JAG-PQ-HEUR-BEST", 9, 324924),
    ("uniform", "JAG-PQ-HEUR-BEST", 16, 183149),
    ("uniform", "JAG-M-HEUR-BEST", 9, 324924),
    ("uniform", "JAG-M-HEUR-BEST", 16, 183149),
    ("uniform", "HIER-RB-LOAD", 9, 333062),
    ("uniform", "HIER-RB-LOAD", 16, 183021),
    ("uniform", "HIER-RELAXED-LOAD", 9, 324924),
    ("uniform", "HIER-RELAXED-LOAD", 16, 182894),
    ("uniform", "JAG-PQ-OPT-BEST", 9, 324924),
    ("uniform", "JAG-M-OPT-BEST", 9, 323615),
    ("uniform", "SPIRAL-RELAXED", 9, 324924),
    ("diagonal", "RECT-UNIFORM", 9, 316803),
    ("diagonal", "RECT-UNIFORM", 16, 216163),
    ("diagonal", "RECT-NICOL", 9, 207720),
    ("diagonal", "RECT-NICOL", 16, 143865),
    ("diagonal", "JAG-PQ-HEUR-BEST", 9, 125066),
    ("diagonal", "JAG-PQ-HEUR-BEST", 16, 76740),
    ("diagonal", "JAG-M-HEUR-BEST", 9, 125066),
    ("diagonal", "JAG-M-HEUR-BEST", 16, 76740),
    ("diagonal", "HIER-RB-LOAD", 9, 124754),
    ("diagonal", "HIER-RB-LOAD", 16, 74669),
    ("diagonal", "HIER-RELAXED-LOAD", 9, 122807),
    ("diagonal", "HIER-RELAXED-LOAD", 16, 73989),
    ("diagonal", "JAG-PQ-OPT-BEST", 9, 125066),
    ("diagonal", "JAG-M-OPT-BEST", 9, 123543),
    ("diagonal", "SPIRAL-RELAXED", 9, 127439),
    ("multi-peak", "RECT-UNIFORM", 9, 69943),
    ("multi-peak", "RECT-UNIFORM", 16, 57197),
    ("multi-peak", "RECT-NICOL", 9, 47112),
    ("multi-peak", "RECT-NICOL", 16, 32329),
    ("multi-peak", "JAG-PQ-HEUR-BEST", 9, 34707),
    ("multi-peak", "JAG-PQ-HEUR-BEST", 16, 23872),
    ("multi-peak", "JAG-M-HEUR-BEST", 9, 34707),
    ("multi-peak", "JAG-M-HEUR-BEST", 16, 23872),
    ("multi-peak", "HIER-RB-LOAD", 9, 38943),
    ("multi-peak", "HIER-RB-LOAD", 16, 28059),
    ("multi-peak", "HIER-RELAXED-LOAD", 9, 38943),
    ("multi-peak", "HIER-RELAXED-LOAD", 16, 27416),
    ("multi-peak", "JAG-PQ-OPT-BEST", 9, 34574),
    ("multi-peak", "JAG-M-OPT-BEST", 9, 34069),
    ("multi-peak", "SPIRAL-RELAXED", 9, 42798),
];

fn workload(name: &str) -> LoadMatrix {
    match name {
        "uniform" => uniform(48, 48, 7).delta(1.5).build(),
        "diagonal" => diagonal(48, 48, 7).build(),
        "multi-peak" => multi_peak(48, 48, 7).build(),
        other => panic!("unknown golden workload {other}"),
    }
}

fn algorithm(name: &str) -> Box<dyn Partitioner> {
    match name {
        "JAG-PQ-OPT-BEST" => Box::new(JagPqOpt::default()),
        "JAG-M-OPT-BEST" => Box::new(JagMOpt::default()),
        "SPIRAL-RELAXED" => Box::new(SpiralRelaxed::default()),
        other => standard_heuristics()
            .into_iter()
            .find(|a| a.name() == other)
            .unwrap_or_else(|| panic!("unknown golden algorithm {other}")),
    }
}

#[test]
fn golden_bottlenecks_are_stable() {
    let mut cache: std::collections::HashMap<&str, PrefixSum2D> = Default::default();
    for &(wl, algo, m, expected) in GOLDEN {
        let pfx = cache
            .entry(wl)
            .or_insert_with(|| PrefixSum2D::new(&workload(wl)));
        let got = algorithm(algo).partition(pfx, m).lmax(pfx);
        assert_eq!(
            got, expected,
            "{algo} on {wl} m={m}: behaviour changed (got {got}, golden {expected})"
        );
    }
}
