//! Cross-algorithm optimality chains (paper §3): each class's optimum
//! bounds its heuristics, richer classes bound poorer ones, and the
//! arbitrary-rectangle oracle bounds everything.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rectpart::core::{
    exhaustive_opt, hier_opt_value, jag_m_opt_dp, Axis, HierRb, HierRelaxed, JagMHeur, JagMOpt,
    JagPqHeur, JagPqOpt, JaggedVariant, LoadMatrix, Partitioner, PrefixSum2D,
};

fn random_pfx(rows: usize, cols: usize, seed: u64, zero_prob: f64) -> PrefixSum2D {
    let mut rng = StdRng::seed_from_u64(seed);
    PrefixSum2D::new(&LoadMatrix::from_fn(rows, cols, |_, _| {
        if rng.gen_bool(zero_prob) {
            0
        } else {
            rng.gen_range(1..60)
        }
    }))
}

#[test]
fn jagged_class_chain() {
    // JAG-M-OPT <= JAG-PQ-OPT <= JAG-PQ-HEUR and JAG-M-OPT <= JAG-M-HEUR,
    // per-orientation so the class inclusions hold exactly.
    for seed in 0..6 {
        let pfx = random_pfx(14, 12, seed, if seed % 2 == 0 { 0.0 } else { 0.2 });
        for m in [4, 9] {
            for variant in [JaggedVariant::Hor, JaggedVariant::Ver] {
                let m_opt = JagMOpt { variant }.partition(&pfx, m).lmax(&pfx);
                let pq_opt = JagPqOpt {
                    variant,
                    grid: None,
                }
                .partition(&pfx, m)
                .lmax(&pfx);
                let pq_heur = JagPqHeur {
                    variant,
                    grid: None,
                }
                .partition(&pfx, m)
                .lmax(&pfx);
                let m_heur = JagMHeur {
                    variant,
                    ..JagMHeur::default()
                }
                .partition(&pfx, m)
                .lmax(&pfx);
                assert!(m_opt <= pq_opt, "seed={seed} m={m} {variant:?}");
                assert!(pq_opt <= pq_heur, "seed={seed} m={m} {variant:?}");
                assert!(m_opt <= m_heur, "seed={seed} m={m} {variant:?}");
            }
        }
    }
}

#[test]
fn parametric_m_opt_agrees_with_paper_dp() {
    for seed in 0..5 {
        let pfx = random_pfx(6, 7, 100 + seed, 0.1);
        for m in [2, 3, 5] {
            for axis in [Axis::Rows, Axis::Cols] {
                let dp = jag_m_opt_dp(&pfx, axis, m);
                let variant = match axis {
                    Axis::Rows => JaggedVariant::Hor,
                    Axis::Cols => JaggedVariant::Ver,
                };
                let par = JagMOpt { variant }.partition(&pfx, m).lmax(&pfx);
                assert_eq!(par, dp, "seed={seed} m={m} {axis:?}");
            }
        }
    }
}

#[test]
fn hierarchical_optimum_bounds_hierarchical_heuristics() {
    for seed in 0..4 {
        let pfx = random_pfx(8, 8, 200 + seed, 0.15);
        for m in [3, 5] {
            let opt = hier_opt_value(&pfx, m);
            assert!(HierRb::load().partition(&pfx, m).lmax(&pfx) >= opt);
            assert!(HierRelaxed::load().partition(&pfx, m).lmax(&pfx) >= opt);
        }
    }
}

#[test]
fn arbitrary_oracle_bounds_every_class() {
    for seed in 0..3 {
        let pfx = random_pfx(4, 5, 300 + seed, 0.2);
        for m in [2, 3, 5] {
            let (_, arb) = exhaustive_opt(&pfx, m);
            assert!(arb >= pfx.lower_bound(m).min(arb));
            for value in [
                JagMOpt::default().partition(&pfx, m).lmax(&pfx),
                hier_opt_value(&pfx, m),
                JagPqOpt::default().partition(&pfx, m).lmax(&pfx),
            ] {
                assert!(value >= arb, "seed={seed} m={m}: {value} < {arb}");
            }
        }
    }
}

#[test]
fn optimal_lmax_is_monotone_in_m() {
    let pfx = random_pfx(10, 10, 77, 0.0);
    let mut prev = u64::MAX;
    for m in 1..=8 {
        let v = JagMOpt::default().partition(&pfx, m).lmax(&pfx);
        assert!(v <= prev, "m={m}: optimal got worse with more processors");
        prev = v;
    }
}

#[test]
fn best_variant_never_loses_to_fixed_orientations() {
    for seed in 0..4 {
        let pfx = random_pfx(12, 20, 400 + seed, 0.0);
        for m in [6, 9] {
            let hor = JagMHeur {
                variant: JaggedVariant::Hor,
                ..JagMHeur::default()
            }
            .partition(&pfx, m)
            .lmax(&pfx);
            let ver = JagMHeur {
                variant: JaggedVariant::Ver,
                ..JagMHeur::default()
            }
            .partition(&pfx, m)
            .lmax(&pfx);
            let best = JagMHeur::best().partition(&pfx, m).lmax(&pfx);
            assert_eq!(best, hor.min(ver), "seed={seed} m={m}");
        }
    }
}
