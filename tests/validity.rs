//! Cross-crate validity: every algorithm must produce a valid tiling
//! that respects the global lower bounds, on every workload class the
//! paper evaluates.

use rectpart::core::{standard_heuristics, JagMOpt, JagPqOpt, Partitioner, PrefixSum2D};
use rectpart::prelude::*;
use rectpart::workloads::{AmrConfig, MeshConfig, MeshKind};

fn workload_zoo() -> Vec<(String, rectpart::core::LoadMatrix)> {
    let mut zoo = vec![
        ("uniform".to_string(), uniform(40, 40, 1).delta(1.5).build()),
        ("diagonal".to_string(), diagonal(40, 40, 2).build()),
        ("peak".to_string(), peak(40, 40, 3).build()),
        ("multi-peak".to_string(), multi_peak(40, 40, 4).build()),
        ("rectangular".to_string(), diagonal(24, 56, 5).build()),
        (
            "amr".to_string(),
            AmrConfig {
                rows: 40,
                cols: 40,
                seed: 6,
                ..AmrConfig::default()
            }
            .generate(),
        ),
        (
            "render".to_string(),
            rectpart::workloads::RenderConfig {
                rows: 40,
                cols: 40,
                ..rectpart::workloads::RenderConfig::default()
            }
            .generate(),
        ),
    ];
    let mesh = MeshConfig {
        grid_rows: 40,
        grid_cols: 40,
        u_samples: 128,
        v_samples: 64,
        kind: MeshKind::Cavity { cells: 4 },
    }
    .generate();
    zoo.push(("mesh".into(), mesh));
    let pic = PicConfig {
        rows: 40,
        cols: 40,
        particles: 4000,
        snapshots: 3,
        ..PicConfig::default()
    };
    let trace = rectpart::workloads::pic_trace(&pic);
    zoo.push(("pic".into(), trace.last().unwrap().matrix.clone()));
    zoo
}

#[test]
fn every_heuristic_tiles_every_workload() {
    for (name, matrix) in workload_zoo() {
        let pfx = PrefixSum2D::new(&matrix);
        for algo in standard_heuristics() {
            for m in [1, 2, 7, 16, 25, 60] {
                let p = algo.partition(&pfx, m);
                assert!(
                    p.validate(&pfx).is_ok(),
                    "{} on {name} m={m}: {:?}",
                    algo.name(),
                    p.validate(&pfx)
                );
                assert_eq!(p.parts(), m, "{} on {name} m={m}", algo.name());
                assert!(
                    p.lmax(&pfx) >= pfx.lower_bound(m),
                    "{} on {name} m={m} beats the lower bound",
                    algo.name()
                );
            }
        }
    }
}

#[test]
fn optimal_algorithms_tile_every_workload() {
    for (name, matrix) in workload_zoo() {
        let pfx = PrefixSum2D::new(&matrix);
        for m in [1, 4, 9] {
            for algo in [
                &JagPqOpt::default() as &dyn Partitioner,
                &JagMOpt::default(),
            ] {
                let p = algo.partition(&pfx, m);
                assert!(p.validate(&pfx).is_ok(), "{} on {name} m={m}", algo.name());
                assert!(p.lmax(&pfx) >= pfx.lower_bound(m));
            }
        }
    }
}

#[test]
fn per_processor_loads_sum_to_total() {
    let matrix = multi_peak(48, 48, 9).build();
    let pfx = PrefixSum2D::new(&matrix);
    for algo in standard_heuristics() {
        let p = algo.partition(&pfx, 13);
        let loads = p.loads(&pfx);
        assert_eq!(loads.len(), 13);
        assert_eq!(
            loads.iter().sum::<u64>(),
            pfx.total(),
            "{} loses load",
            algo.name()
        );
    }
}

#[test]
fn imbalance_is_consistent_with_lmax() {
    let matrix = peak(32, 32, 5).build();
    let pfx = PrefixSum2D::new(&matrix);
    for algo in standard_heuristics() {
        for m in [4, 9] {
            let p = algo.partition(&pfx, m);
            let expected = p.lmax(&pfx) as f64 / pfx.average_load(m) - 1.0;
            assert!((p.load_imbalance(&pfx) - expected).abs() < 1e-12);
        }
    }
}

#[test]
fn extreme_processor_counts() {
    // m = 1 and m >= cells must both work for every algorithm.
    let matrix = uniform(6, 6, 8).delta(2.0).build();
    let pfx = PrefixSum2D::new(&matrix);
    for algo in standard_heuristics() {
        let one = algo.partition(&pfx, 1);
        assert_eq!(one.lmax(&pfx), pfx.total(), "{}", algo.name());
        let many = algo.partition(&pfx, 50);
        assert!(many.validate(&pfx).is_ok(), "{}", algo.name());
        assert!(many.lmax(&pfx) >= pfx.max_cell() as u64);
    }
}
