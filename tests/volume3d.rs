//! Cross-crate 3D tests: volume partitioning, the accumulate-to-2D
//! equivalence, and property-based box/prefix invariants.

use proptest::collection::vec;
use proptest::prelude::*;
use rectpart::core::{JagMHeur, Partitioner, PrefixSum2D};
use rectpart::volume::{
    peak3, uniform3, Axis3, Box3, HierRb3, JagMHeur3, LoadVolume, Partition3, Partitioner3,
    PrefixSum3D, RectUniform3,
};
use rectpart::workloads::{pic3_trace, Pic3Config, PicConfig};

#[test]
fn all_3d_algorithms_tile_pic_volumes() {
    let cfg = Pic3Config {
        planar: PicConfig {
            rows: 24,
            cols: 24,
            particles: 3000,
            snapshots: 2,
            ..PicConfig::default()
        },
        depth: 8,
        vz_thermal: 0.3,
    };
    let volume = pic3_trace(&cfg).pop().unwrap().volume;
    let pfx = PrefixSum3D::new(&volume);
    for m in [1, 5, 8, 27] {
        let grid = RectUniform3::default().partition(&pfx, m);
        assert!(grid.validate(&pfx).is_ok(), "grid m={m}");
        let hier = HierRb3.partition(&pfx, m);
        assert!(hier.validate(&pfx).is_ok(), "hier m={m}");
        for axis in Axis3::ALL {
            let jag = JagMHeur3::new(&volume, axis).partition(&pfx, m);
            assert!(jag.validate(&pfx).is_ok(), "jag {axis:?} m={m}");
            assert!(jag.lmax(&pfx) >= pfx.lower_bound(m));
        }
    }
}

#[test]
fn extruded_2d_partition_matches_flattened_imbalance() {
    // The paper's preprocessing is lossless for extruded (column-shaped)
    // partitions: accumulation preserves column loads exactly.
    let volume = peak3(16, 16, 12, 5);
    let pfx3 = PrefixSum3D::new(&volume);
    let flat = volume.flatten(Axis3::Z);
    let pfx2 = PrefixSum2D::new(&flat);
    let m = 9;
    let part2 = JagMHeur::best().partition(&pfx2, m);
    let extruded = Partition3::new(
        part2
            .rects()
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Box3::EMPTY
                } else {
                    Box3::new(r.r0, r.r1, r.c0, r.c1, 0, 12)
                }
            })
            .collect(),
    );
    assert!(extruded.validate(&pfx3).is_ok());
    assert_eq!(extruded.lmax(&pfx3), part2.lmax(&pfx2));
    assert!((extruded.load_imbalance(&pfx3) - part2.load_imbalance(&pfx2)).abs() < 1e-12);
}

#[test]
fn native_3d_beats_or_matches_extrusion_on_uniform_volumes() {
    let volume = uniform3(12, 12, 12, 1.2, 3);
    let pfx3 = PrefixSum3D::new(&volume);
    let flat = volume.flatten(Axis3::Z);
    let pfx2 = PrefixSum2D::new(&flat);
    let m = 8;
    let flat_imb = JagMHeur::best().partition(&pfx2, m).load_imbalance(&pfx2);
    let hier3 = HierRb3.partition(&pfx3, m).load_imbalance(&pfx3);
    // 2^3 processors on a cube: bisection can cut every axis once.
    assert!(hier3 <= flat_imb + 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn prefix3_matches_naive(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        let (nx, ny, nz) = dims;
        let data: Vec<u32> = {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            (0..nx * ny * nz).map(|_| rng.gen_range(0..100)).collect()
        };
        let v = LoadVolume::from_vec(nx, ny, nz, data);
        let p = PrefixSum3D::new(&v);
        prop_assert_eq!(p.total(), v.total());
        for x0 in 0..=nx {
            for y0 in 0..=ny {
                let b = Box3::new(x0, nx, y0, ny, 0, nz);
                prop_assert_eq!(p.load(&b), v.load_naive(&b));
            }
        }
    }

    #[test]
    fn hier3_tiles_arbitrary_volumes(
        dims in (1usize..8, 1usize..8, 1usize..8),
        loads in vec(0u32..50, 1..512),
        m in 1usize..10,
    ) {
        let (nx, ny, nz) = dims;
        let cells = nx * ny * nz;
        let data: Vec<u32> = (0..cells).map(|i| loads[i % loads.len()]).collect();
        let v = LoadVolume::from_vec(nx, ny, nz, data);
        let p = PrefixSum3D::new(&v);
        let part = HierRb3.partition(&p, m);
        prop_assert!(part.validate(&p).is_ok());
        prop_assert!(part.lmax(&p) >= p.lower_bound(m) || p.total() == 0);
        prop_assert_eq!(part.loads(&p).iter().sum::<u64>(), p.total());
    }

    #[test]
    fn flatten_preserves_totals(
        dims in (1usize..6, 1usize..6, 1usize..6),
        seed in 0u64..1000,
    ) {
        let (nx, ny, nz) = dims;
        let v = uniform3(nx, ny, nz, 1.7, seed);
        for axis in Axis3::ALL {
            prop_assert_eq!(v.flatten(axis).total(), v.total());
        }
    }
}
