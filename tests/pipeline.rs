//! End-to-end pipeline tests: workload generation → partitioning →
//! execution simulation → persistence, spanning every crate.

use rectpart::prelude::*;
use rectpart::simexec::{dynamic_run, migration, RebalancePolicy};
use rectpart::workloads::io::{read_csv, write_csv};

#[test]
fn pic_to_partition_to_simulation() {
    let cfg = PicConfig {
        rows: 48,
        cols: 48,
        particles: 6000,
        snapshots: 5,
        // Particle-dominated load so the drifting wind visibly moves the
        // partition between snapshots.
        base_load: 10,
        substeps_per_snapshot: 40,
        ..PicConfig::default()
    };
    let trace: Vec<_> = rectpart::workloads::pic_trace(&cfg)
        .into_iter()
        .map(|s| s.matrix)
        .collect();
    let stats = dynamic_run(
        &trace,
        &JagMHeur::best(),
        9,
        &CommModel::default(),
        RebalancePolicy::EverySnapshot,
    );
    assert_eq!(stats.len(), 5);
    for s in &stats {
        assert!(s.imbalance >= 0.0);
        assert!(s.speedup > 0.0 && s.speedup <= 9.0 + 1e-9);
        assert!(s.makespan > 0.0);
    }
    // The wind drifts particles, so at least one later snapshot must move
    // cells between owners.
    assert!(stats[1..].iter().any(|s| s.migration_cells > 0));
}

#[test]
fn migration_is_bounded_by_cell_count() {
    let a = peak(32, 32, 1).build();
    let b = peak(32, 32, 2).build(); // different peak location
    let pfx_b = PrefixSum2D::new(&b);
    let pa = HierRb::load().partition(&PrefixSum2D::new(&a), 8);
    let pb = HierRb::load().partition(&pfx_b, 8);
    let rep = migration(&pfx_b, &pa, &pb);
    assert!(rep.cells <= 32 * 32);
    assert!(rep.load <= pfx_b.total());
}

#[test]
fn simulator_speedup_is_capped_by_processor_count() {
    let matrix = uniform(64, 64, 3).delta(1.2).build();
    let pfx = PrefixSum2D::new(&matrix);
    let sim = Simulator::default();
    for m in [2, 8, 32] {
        let p = JagMHeur::best().partition(&pfx, m);
        let rep = sim.evaluate(&pfx, &p);
        assert!(rep.speedup <= m as f64 + 1e-9, "m={m}");
        assert!(rep.efficiency <= 1.0 + 1e-9);
        assert!(rep.compute_time <= rep.makespan + 1e-9);
    }
}

#[test]
fn matrices_survive_csv_roundtrip_and_partition_identically() {
    let matrix = multi_peak(24, 24, 6).build();
    let path = std::env::temp_dir().join(format!("rectpart-pipeline-{}.csv", std::process::id()));
    write_csv(&matrix, &path).unwrap();
    let back = read_csv(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(matrix, back);
    let a = JagMHeur::best().partition(&PrefixSum2D::new(&matrix), 7);
    let b = JagMHeur::best().partition(&PrefixSum2D::new(&back), 7);
    assert_eq!(a.rects(), b.rects(), "partitioning must be deterministic");
}

#[test]
fn mesh_instances_favor_space_adaptive_methods() {
    // The figure-14 phenomenon at test scale: on the sparse mesh the
    // area-based grid is far worse than the load-adaptive methods.
    let mesh = MeshConfig {
        grid_rows: 96,
        grid_cols: 96,
        u_samples: 512,
        v_samples: 256,
        ..MeshConfig::default()
    }
    .generate();
    let pfx = PrefixSum2D::new(&mesh);
    let m = 36;
    let grid = RectUniform::default()
        .partition(&pfx, m)
        .load_imbalance(&pfx);
    let jag = JagMHeur::best().partition(&pfx, m).load_imbalance(&pfx);
    let hier = HierRelaxed::load().partition(&pfx, m).load_imbalance(&pfx);
    assert!(
        grid > 2.0 * jag.min(hier),
        "uniform grid ({grid}) should be far worse than adaptive methods ({jag}, {hier})"
    );
}
