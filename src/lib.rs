#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # rectpart — rectangle partitioning of spatially located computations
//!
//! A faithful, production-quality reproduction of
//! *Partitioning Spatially Located Computations using Rectangles*
//! (Saule, Baş, Çatalyürek — IPDPS 2011, DOI 10.1109/IPDPS.2011.72).
//!
//! Given a 2D matrix of positive integers describing spatially located
//! load, the library partitions it into `m` axis-aligned rectangles — one
//! per processor — minimizing the load of the most loaded rectangle. All
//! solution classes of the paper are implemented, each with the paper's
//! heuristics and optimal algorithms:
//!
//! * **rectilinear** (`RECT-UNIFORM`, `RECT-NICOL`),
//! * **P×Q-way jagged** (`JAG-PQ-HEUR`, `JAG-PQ-OPT`),
//! * **m-way jagged** — the paper's new class (`JAG-M-HEUR`, `JAG-M-OPT`),
//! * **hierarchical bipartitions** (`HIER-RB`, `HIER-RELAXED`,
//!   `HIER-OPT`).
//!
//! The workspace also ships the substrates the paper's evaluation depends
//! on: a generic 1D partitioning library ([`onedim`]), synthetic and
//! simulated workload generators ([`workloads`], including a
//! particle-in-cell magnetosphere simulator and a projected 3D mesh), and
//! a BSP execution/communication simulator ([`simexec`]).
//!
//! ## Quickstart
//!
//! ```
//! use rectpart::prelude::*;
//!
//! // A 128x128 synthetic instance with a load peak (paper §4.1).
//! let matrix = peak(128, 128, 7).build();
//! let pfx = PrefixSum2D::new(&matrix);
//!
//! // Partition for 100 processors with the paper's best heuristic.
//! let partition = JagMHeur::best().partition(&pfx, 100);
//! assert!(partition.validate(&pfx).is_ok());
//!
//! // The bottleneck sits between the trivial lower bound (the heaviest
//! // cell or the perfect average, whichever is larger) and 2x it.
//! let lmax = partition.lmax(&pfx);
//! assert!(lmax >= pfx.lower_bound(100));
//! assert!(lmax < 2 * pfx.lower_bound(100));
//! ```

pub use rectpart_core as core;
pub use rectpart_engine as engine;
pub use rectpart_obs as obs;
pub use rectpart_onedim as onedim;
#[cfg(feature = "resume")]
pub use rectpart_resume as resume;
pub use rectpart_robust as robust;
pub use rectpart_simexec as simexec;
pub use rectpart_volume as volume;
pub use rectpart_workloads as workloads;

/// Convenient re-exports of the most used items across the workspace.
pub mod prelude {
    pub use rectpart_core::{
        hier_opt, Axis, HierRb, HierRelaxed, HierVariant, JagMHeur, JagMOpt, JagPqHeur, JagPqOpt,
        JaggedVariant, LoadMatrix, Multilevel, Partition, PartitionStats, Partitioner, PrefixSum2D,
        Rect, RectNicol, RectUniform, RectpartError, SpiralRelaxed,
    };
    pub use rectpart_engine::{Engine, EngineConfig, Query};
    pub use rectpart_onedim::{nicol, IntervalCost, PrefixCosts};
    pub use rectpart_robust::{DegradationReport, SolveOutcome, SolverDriver};
    pub use rectpart_simexec::{CommModel, ExecutionReport, Simulator};
    pub use rectpart_workloads::{
        diagonal, multi_peak, peak, uniform, MeshConfig, PicConfig, PicSimulation,
    };
}
